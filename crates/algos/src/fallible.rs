//! Fallible (`try_*`) entry points: the fault-isolating front door.
//!
//! Every public algorithm has a `try_` variant here returning
//! [`KanonResult`]. These wrap the shared implementation in
//! `catch_unwind` and convert every failure mode into a value:
//!
//! * domain errors (`CoreError`) pass through as [`KanonError::Core`];
//! * typed `kanon-fault` injections (raised by armed failpoints, possibly
//!   from inside a `kanon-parallel` worker) become
//!   [`KanonError::FaultInjected`];
//! * isolated worker panics become [`KanonError::WorkerPanic`] (lowest
//!   worker index, as guaranteed by `kanon-parallel`);
//! * any other organic panic becomes [`KanonError::Panic`].
//!
//! The panicking wrappers (`kk_anonymize`, `agglomerative_k_anonymize`,
//! …) are reimplemented on top of these: they unwrap `Core` errors back
//! into `Result<_, CoreError>` and re-raise everything else as a
//! `KanonError` panic payload, so pre-existing callers see unchanged
//! behaviour on valid input — byte-identical outputs at any thread count.
//!
//! ## Graceful degradation
//!
//! The long-running algorithms (agglomerative, forest, and the best-k
//! grid over them) honour the deterministic work budget
//! (`KANON_WORK_BUDGET` / `kanon_obs::with_work_budget`): when the sum of
//! the deterministic work counters reaches the budget, they stop refining
//! and complete cheaply, returning
//! [`Budgeted::BudgetExhausted`]`{ best_so_far, .. }` — a *valid*
//! k-anonymous result, just more generalized than a full run. With no
//! budget armed they always return [`Budgeted::Complete`].

use crate::agglomerative::{agglomerative_impl, AgglomerativeConfig, KAnonOutput};
use crate::distance::ClusterDistance;
use crate::forest::forest_impl;
use crate::global_one_k::GlobalOutput;
use crate::k1::GenOutput;
use crate::ldiversity::{ldiversity_impl, LDiverseConfig};
use crate::pipeline::{global_impl, k1_impl, kk_impl, GlobalConfig, K1Method, KkConfig};
use kanon_core::error::{KanonError, KanonResult, Result};
use kanon_core::table::{GeneralizedTable, Table};
use kanon_measures::NodeCostTable;
use std::any::Any;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Outcome of a budget-aware run: complete, or a valid partial result
/// produced after the deterministic work budget ran out.
#[derive(Debug, Clone, PartialEq)]
pub enum Budgeted<T> {
    /// The run finished within budget (always the case when no budget
    /// is armed).
    Complete(T),
    /// The work budget tripped mid-run; `best_so_far` is still a valid
    /// k-anonymous output, with more generalization than a full run.
    BudgetExhausted {
        /// The valid partial result.
        best_so_far: T,
        /// The configured budget, in work units (counter sum).
        budget: u64,
        /// Work spent when the budget tripped.
        spent: u64,
    },
}

impl<T> Budgeted<T> {
    /// The result, complete or partial.
    pub fn into_inner(self) -> T {
        match self {
            Budgeted::Complete(v) | Budgeted::BudgetExhausted { best_so_far: v, .. } => v,
        }
    }

    /// A reference to the result, complete or partial.
    pub fn inner(&self) -> &T {
        match self {
            Budgeted::Complete(v) | Budgeted::BudgetExhausted { best_so_far: v, .. } => v,
        }
    }

    /// True when the work budget tripped mid-run.
    pub fn is_exhausted(&self) -> bool {
        matches!(self, Budgeted::BudgetExhausted { .. })
    }
}

/// Converts a caught panic payload into the matching [`KanonError`].
/// Public so callers owning their own `catch_unwind` boundary (e.g. the
/// CLI) classify payloads identically to the `try_*` entry points.
pub fn error_from_panic(payload: Box<dyn Any + Send>) -> KanonError {
    // A panicking wrapper re-raised an already-typed error.
    let payload = match payload.downcast::<KanonError>() {
        Ok(e) => return *e,
        Err(p) => p,
    };
    // An isolated worker panic from kanon-parallel.
    let payload = match payload.downcast::<kanon_parallel::WorkerPanic>() {
        Ok(wp) => {
            return match wp.fault_point {
                Some(point) => KanonError::FaultInjected { point },
                None => KanonError::WorkerPanic {
                    worker: wp.worker,
                    message: wp.message,
                },
            }
        }
        Err(p) => p,
    };
    // A typed fault injection on the serial path.
    let payload = match payload.downcast::<kanon_fault::InjectedFault>() {
        Ok(fault) => return KanonError::FaultInjected { point: fault.point },
        Err(p) => p,
    };
    // A malformed KANON_FAILPOINTS spec (unknown point name or mode):
    // the request environment is wrong, not the run — usage error,
    // exit code 2.
    let payload = match payload.downcast::<kanon_fault::SpecError>() {
        Ok(spec) => return KanonError::Usage(spec.to_string()),
        Err(p) => p,
    };
    let message = if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    };
    KanonError::Panic { message }
}

/// Runs `f` with panic isolation, converting every failure to a value.
fn catch<T>(f: impl FnOnce() -> Result<T>) -> KanonResult<T> {
    match catch_unwind(AssertUnwindSafe(f)) {
        Ok(Ok(v)) => Ok(v),
        Ok(Err(e)) => Err(KanonError::Core(e)),
        Err(payload) => Err(error_from_panic(payload)),
    }
}

/// Re-surfaces a `try_*` result for the panicking wrappers: `Core`
/// errors become plain `CoreError`s, everything else re-raises with the
/// typed `KanonError` as panic payload (which `error_from_panic`
/// recognises, so nesting is lossless).
pub(crate) fn unwrap_or_repanic<T>(r: KanonResult<T>) -> Result<T> {
    match r {
        Ok(v) => Ok(v),
        Err(KanonError::Core(e)) => Err(e),
        Err(other) => std::panic::panic_any(other),
    }
}

/// Fallible form of [`crate::agglomerative_k_anonymize`] (Algorithms
/// 1/2) with budget-aware graceful degradation.
pub fn try_agglomerative_k_anonymize(
    table: &Table,
    costs: &NodeCostTable,
    cfg: &AgglomerativeConfig,
) -> KanonResult<Budgeted<KAnonOutput>> {
    catch(|| agglomerative_impl(table, costs, cfg))
}

/// Fallible form of [`crate::l_diverse_k_anonymize`] (k-anonymity +
/// distinct-ℓ-diversity) with budget-aware graceful degradation.
pub fn try_l_diverse_k_anonymize(
    table: &Table,
    costs: &NodeCostTable,
    sensitive: &[u32],
    cfg: &LDiverseConfig,
) -> KanonResult<Budgeted<KAnonOutput>> {
    catch(|| ldiversity_impl(table, costs, sensitive, cfg))
}

/// Fallible form of [`crate::forest_k_anonymize`] (the forest baseline)
/// with budget-aware graceful degradation.
pub fn try_forest_k_anonymize(
    table: &Table,
    costs: &NodeCostTable,
    k: usize,
) -> KanonResult<Budgeted<KAnonOutput>> {
    catch(|| forest_impl(table, costs, k))
}

/// Fallible form of [`crate::k1_anonymize`] (Algorithm 3 or 4).
pub fn try_k1_anonymize(
    table: &Table,
    costs: &NodeCostTable,
    k: usize,
    method: K1Method,
) -> KanonResult<GenOutput> {
    catch(|| k1_impl(table, costs, k, method))
}

/// Fallible form of [`crate::one_k_anonymize`] (Algorithm 5).
pub fn try_one_k_anonymize(
    table: &Table,
    gtable: &GeneralizedTable,
    costs: &NodeCostTable,
    k: usize,
) -> KanonResult<GenOutput> {
    catch(|| crate::one_k::one_k_impl(table, gtable, costs, k))
}

/// Fallible form of [`crate::kk_anonymize`] ((k,k) pipeline).
pub fn try_kk_anonymize(
    table: &Table,
    costs: &NodeCostTable,
    cfg: &KkConfig,
) -> KanonResult<GenOutput> {
    catch(|| kk_impl(table, costs, cfg))
}

/// Fallible form of [`crate::global_1k_anonymize`] (global (1,k)
/// pipeline, Algorithm 6).
pub fn try_global_1k_anonymize(
    table: &Table,
    costs: &NodeCostTable,
    cfg: &GlobalConfig,
) -> KanonResult<GlobalOutput> {
    catch(|| global_impl(table, costs, cfg))
}

/// Fallible form of [`crate::mondrian_k_anonymize`] (top-down Mondrian
/// baseline) with budget-aware graceful degradation.
pub fn try_mondrian_k_anonymize(
    table: &Table,
    costs: &NodeCostTable,
    k: usize,
) -> KanonResult<Budgeted<KAnonOutput>> {
    try_mondrian_k_anonymize_rooted(table, costs, k, &[])
}

/// Fallible form of [`crate::mondrian_k_anonymize_rooted`]: Mondrian
/// with `--on-bad-row root` rooted-cell awareness.
pub fn try_mondrian_k_anonymize_rooted(
    table: &Table,
    costs: &NodeCostTable,
    k: usize,
    rooted_cells: &[(usize, usize)],
) -> KanonResult<Budgeted<KAnonOutput>> {
    catch(|| crate::mondrian::mondrian_impl(table, costs, k, rooted_cells))
}

/// Fallible form of [`crate::sharded_k_anonymize`] (shard-and-conquer
/// pipeline) with budget-aware graceful degradation.
pub fn try_sharded_k_anonymize(
    table: &Table,
    costs: &NodeCostTable,
    cfg: &crate::shard::ShardConfig,
) -> KanonResult<Budgeted<crate::shard::ShardedOutput>> {
    catch(|| crate::shard::sharded_impl(table, costs, None, cfg))
}

/// Fallible form of [`crate::sharded_l_diverse_k_anonymize`]
/// (shard-and-conquer with distinct-ℓ-diversity) with budget-aware
/// graceful degradation.
pub fn try_sharded_l_diverse_k_anonymize(
    table: &Table,
    costs: &NodeCostTable,
    sensitive: &[u32],
    cfg: &crate::shard::ShardConfig,
) -> KanonResult<Budgeted<crate::shard::ShardedOutput>> {
    catch(|| crate::shard::sharded_impl(table, costs, Some(sensitive), cfg))
}

/// Fallible form of [`crate::fulldomain_k_anonymize`] (full-domain
/// lattice enumeration, the Incognito-model baseline).
pub fn try_fulldomain_k_anonymize(
    table: &Table,
    costs: &NodeCostTable,
    k: usize,
) -> KanonResult<crate::FullDomainOutput> {
    catch(|| crate::fulldomain::fulldomain_impl(table, costs, k))
}

/// Fallible form of [`crate::mdav_k_anonymize`] (MDAV-style
/// microaggregation baseline).
pub fn try_mdav_k_anonymize(
    table: &Table,
    costs: &NodeCostTable,
    k: usize,
) -> KanonResult<KAnonOutput> {
    catch(|| crate::mdav::mdav_impl(table, costs, k))
}

/// Fallible form of [`crate::samarati_k_anonymize`] (Samarati's
/// binary search with a suppression budget).
pub fn try_samarati_k_anonymize(
    table: &Table,
    costs: &NodeCostTable,
    k: usize,
    max_sup: usize,
) -> KanonResult<crate::SamaratiOutput> {
    catch(|| crate::samarati::samarati_impl(table, costs, k, max_sup))
}

/// Fallible form of [`crate::optimal_k_anonymize`] (the exhaustive
/// test oracle — exponential, use on tiny tables only).
pub fn try_optimal_k_anonymize(
    table: &Table,
    costs: &NodeCostTable,
    k: usize,
) -> KanonResult<KAnonOutput> {
    catch(|| crate::optimal::optimal_impl(table, costs, k))
}

/// Fallible form of [`crate::best_k_anonymize`] (the "best k-anon"
/// protocol) with budget-aware graceful degradation across the grid.
pub fn try_best_k_anonymize(
    table: &Table,
    costs: &NodeCostTable,
    k: usize,
    distances: &[ClusterDistance],
    include_modified: bool,
) -> KanonResult<Budgeted<(KAnonOutput, AgglomerativeConfig)>> {
    if distances.is_empty() {
        return Err(KanonError::Usage(
            "best_k_anonymize needs at least one distance function".to_string(),
        ));
    }
    catch(|| crate::pipeline::best_k_impl(table, costs, k, distances, include_modified))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budgeted_accessors() {
        let c: Budgeted<u32> = Budgeted::Complete(7);
        assert!(!c.is_exhausted());
        assert_eq!(*c.inner(), 7);
        assert_eq!(c.into_inner(), 7);
        let e: Budgeted<u32> = Budgeted::BudgetExhausted {
            best_so_far: 9,
            budget: 100,
            spent: 123,
        };
        assert!(e.is_exhausted());
        assert_eq!(e.into_inner(), 9);
    }

    #[test]
    fn error_from_panic_recognises_payloads() {
        let e = error_from_panic(Box::new("boom"));
        assert_eq!(
            e,
            KanonError::Panic {
                message: "boom".to_string()
            }
        );
        let e = error_from_panic(Box::new(kanon_fault::InjectedFault {
            point: "p".to_string(),
        }));
        assert_eq!(
            e,
            KanonError::FaultInjected {
                point: "p".to_string()
            }
        );
        let e = error_from_panic(Box::new(KanonError::Usage("u".to_string())));
        assert_eq!(e, KanonError::Usage("u".to_string()));
        let e = error_from_panic(Box::new(kanon_fault::SpecError {
            message: "unknown fail point `x`".to_string(),
        }));
        assert_eq!(e.exit_code(), 2);
        assert!(
            matches!(&e, KanonError::Usage(m) if m.contains("unknown fail point `x`")),
            "{e:?}"
        );
        let e = error_from_panic(Box::new(42u32));
        assert!(matches!(e, KanonError::Panic { .. }));
    }

    #[test]
    fn empty_distance_list_is_a_usage_error() {
        use kanon_core::record::Record;
        use kanon_core::schema::SchemaBuilder;
        use kanon_measures::LmMeasure;
        use std::sync::Arc;
        let schema = SchemaBuilder::new()
            .numeric_with_intervals("age", 0, 9, &[5])
            .build_shared()
            .unwrap();
        let rows = (0..10).map(|i| Record::from_raw([i])).collect();
        let table = Table::new(Arc::clone(&schema), rows).unwrap();
        let costs = NodeCostTable::compute(&table, &LmMeasure);
        let e = try_best_k_anonymize(&table, &costs, 2, &[], false).unwrap_err();
        assert!(matches!(e, KanonError::Usage(_)));
        assert_eq!(e.exit_code(), 2);
    }
}
