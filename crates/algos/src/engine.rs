//! The shared closest-pair clustering engine.
//!
//! Every agglomerative anonymizer in this workspace has the same inner
//! loop: keep a pool of *active* clusters, repeatedly unify the two
//! closest ones, and move a cluster to the output once it satisfies a
//! maturity condition (size ≥ k for plain k-anonymity; size ≥ k *and*
//! ℓ distinct sensitive values for ℓ-diversity). Rescanning all pairs on
//! every merge makes that loop O(n³); this module extracts the
//! nearest-neighbour cache that makes it O(n²) expected — previously
//! private to `agglomerative.rs` — so every variant of the loop shares
//! one engine instead of re-growing its own quadratic scan.
//!
//! ## What the engine owns
//!
//! * the per-cluster **top-2 nearest-neighbour cache** (`NearestPair`
//!   with the `Runner` exactness state machine) and its repair rules;
//! * the parallel initial scan and batched cache-repair rescans
//!   (`kanon-parallel`, byte-identical at any worker count);
//! * the merge loop itself: a `kanon-fault` failpoint
//!   ([`ClusterPolicy::FAIL_POINT`]) and the deterministic work-budget
//!   checkpoint (`KANON_WORK_BUDGET`) at the top of every iteration, the
//!   global-min selection with its debug-build exactness assert, and the
//!   `kanon-obs` counters (`merges_performed`, `cluster_dist_evals`,
//!   `cache_repairs`, `nn_rescans`).
//!
//! ## What callers own
//!
//! The cluster payload and policy (distance, merge, maturity, optional
//! post-maturity eviction) via [`ClusterPolicy`], plus everything outside
//! the loop: input validation, the budget-exhaustion combine step, and
//! leftover-record distribution. [`run`] returns the matured clusters,
//! the still-active remainder (in active order) and the budget verdict.
//!
//! ## Determinism contract
//!
//! All selections use the total order of `closer` (distance, then slot
//! index), every parallel primitive combines per-index results in index
//! order, and counters attach to per-index work — so clusterings, losses
//! and the deterministic counter block are byte-identical at any
//! `KANON_THREADS`. The determinism proptests pin this for both engine
//! clients.

use crate::cost::SigArena;
use kanon_obs::Counter;

/// Minimum estimated distance evaluations in one batch before the
/// engine fans the batch out to the worker pool. Measured, not guessed:
/// `benches/engine_rescan.rs` times warm-pool batched dispatches
/// against the serial pass over batch sizes. On the reference box one
/// fused-kernel evaluation is ~47 ns and a warm dispatch costs
/// ~25–35 µs end to end, which puts the break-even at ~1100 evals for
/// 2 workers and ~600 for 8; the constant is the conservative next
/// power of two above the worst case (see EXPERIMENTS.md E-S3 for the
/// table; the old per-call-spawn layer gated on ~64 *items* regardless
/// of per-item cost, which is what made small repair batches negative).
/// Public because every packed distance scan in the workspace — the
/// engine's own rescans and the serve daemon's absorption sweep over
/// resident mature-cluster signatures — faces the same break-even, so
/// they must share one measured constant instead of re-guessing it.
pub const MIN_PAR_SCAN_EVALS: usize = 2048;

/// Packed-kernel hooks: a policy whose distance is a pure function of
/// the cluster triple (signature, size, cost) can expose this
/// evaluator, and the engine then mirrors every cluster into a flat
/// SoA [`SigArena`] (one contiguous `u32` node lane per attribute,
/// indexed by engine slot) and runs all distance scans out of it —
/// streaming fused `(join, cost)` probes instead of chasing
/// per-cluster heap vectors.
///
/// Contract: `dist(arena, a, b)` must return the same bits — and
/// increment the same deterministic counters — as
/// [`ClusterPolicy::distance`] on the payloads stored at `a` and `b`,
/// for the engine's byte-identity guarantees to hold.
pub trait PackedEval<C>: Sync {
    /// Fresh arena with this policy's attribute arity and room for
    /// `capacity` slots.
    fn new_arena(&self, capacity: usize) -> SigArena;

    /// Writes `c`'s signature, size and cost into `slot`.
    fn store(&self, c: &C, slot: usize, arena: &mut SigArena);

    /// Distance between stored slots `a` and `b`; argument order
    /// matches the engine's payload-path call sites.
    fn dist(&self, arena: &SigArena, a: usize, b: usize) -> f64;
}

/// The merge/maturity policy a caller plugs into [`run`].
///
/// The engine treats payloads as opaque: it only measures distances,
/// merges pairs, and asks whether a cluster has matured. Implementations
/// must be pure (no interior mutability observable across calls) — the
/// engine evaluates distances in parallel and relies on every evaluation
/// of the same pair returning the same bits.
pub trait ClusterPolicy: Sync {
    /// The cluster payload (members, closure nodes, costs, …).
    type Payload: Send + Sync;

    /// Name of the `kanon-fault` failpoint armed at the top of every
    /// merge iteration (see the catalogue in `kanon-fault`'s docs).
    const FAIL_POINT: &'static str;

    /// `dist(a, b)` under the caller's cluster-distance function. Called
    /// through the engine's counting wrapper, so implementations must
    /// *not* count [`Counter::ClusterDistEvals`] themselves.
    fn distance(&self, a: &Self::Payload, b: &Self::Payload) -> f64;

    /// Unifies two clusters into one.
    fn merge(&self, a: Self::Payload, b: Self::Payload) -> Self::Payload;

    /// Has this cluster matured (ready to move to the output)?
    fn is_mature(&self, c: &Self::Payload) -> bool;

    /// Hook invoked on a cluster that just matured, *before* it is moved
    /// to the output; returns clusters to re-activate. Algorithm 2 uses
    /// this to shrink ripe clusters back to size k and recycle the
    /// evicted records as singletons. The default recycles nothing.
    fn on_mature(&self, c: &mut Self::Payload) -> Vec<Self::Payload> {
        let _ = c;
        Vec::new()
    }

    /// Opt-in packed acceleration (see [`PackedEval`]); the default
    /// generic path returns `None` and the engine calls
    /// [`Self::distance`] on payload references.
    fn packed(&self) -> Option<&dyn PackedEval<Self::Payload>> {
        None
    }
}

/// What [`run`] hands back to the caller.
#[derive(Debug)]
pub struct RunOutcome<C> {
    /// Clusters that matured, in maturation order.
    pub done: Vec<C>,
    /// Clusters still active when the loop ended, in active order. At
    /// most one (the classic leftover) unless the budget tripped.
    pub remaining: Vec<C>,
    /// `Some((budget, spent))` when the deterministic work budget
    /// tripped mid-run; the caller must degrade gracefully (combine
    /// `remaining` into a valid output) rather than keep refining.
    pub exhausted: Option<(u64, u64)>,
}

/// Nearest-neighbour cache entry: distance and target slot.
#[derive(Debug, Clone, Copy)]
struct Nearest {
    dist: f64,
    target: usize,
}

/// What a slot knows about its runner-up candidate.
#[derive(Debug, Clone, Copy)]
enum Runner {
    /// Exact knowledge: `Some` = the true 2nd-nearest at last full scan
    /// (maintained through newcomer insertions), `None` = fewer than two
    /// candidates existed. Every candidate outside the top-2 is at least
    /// as far as the runner-up.
    Exact(Option<Nearest>),
    /// Unknown: the previous runner-up was promoted to best by a
    /// fallback. The invariant that survives is weaker — every candidate
    /// outside the cache is at least as far as the *best* — so newcomers
    /// may still take over best, but the runner slot must not be filled
    /// (an unseen candidate could be closer), and the next best-death
    /// forces a full rescan.
    Unknown,
}

/// Top-2 nearest neighbours of a slot. Keeping the runner-up lets a slot
/// whose nearest neighbour was merged away fall back without a full
/// rescan; the [`Runner`] state tracks exactly when that shortcut is
/// sound.
#[derive(Debug, Clone, Copy)]
struct NearestPair {
    best: Nearest,
    second: Runner,
}

/// Strict "closer" order with deterministic index tie-break.
#[inline]
pub(crate) fn closer(d1: f64, t1: usize, d2: f64, t2: usize) -> bool {
    d1.total_cmp(&d2).is_lt() || (d1 == d2 && t1 < t2)
}

struct State<'p, P: ClusterPolicy> {
    policy: &'p P,
    /// Cluster storage; `None` = slot retired (merged away or matured).
    slots: Vec<Option<P::Payload>>,
    /// Slots that are currently active (immature clusters, the γ̂ of the
    /// paper).
    active: Vec<usize>,
    /// Per-slot nearest-neighbour cache (meaningful for active slots).
    nearest: Vec<Option<NearestPair>>,
    /// Packed acceleration: the policy's evaluator plus the SoA
    /// signature arena, kept in lock-step with `slots`. `None` runs the
    /// generic payload path.
    packed: Option<(&'p dyn PackedEval<P::Payload>, SigArena)>,
    /// Scratch (reused across merges): slots needing a full rescan.
    repair_scratch: Vec<usize>,
    /// Scratch (reused across merges): newcomer distance buffer.
    dist_scratch: Vec<f64>,
}

impl<'p, P: ClusterPolicy> State<'p, P> {
    /// Distance between two live slots: the packed arena path when the
    /// policy exposes one (bit-identical by the [`PackedEval`]
    /// contract), else the payload path.
    fn dist_between(&self, a: usize, b: usize) -> f64 {
        kanon_obs::count(Counter::ClusterDistEvals, 1);
        if let Some((pk, arena)) = &self.packed {
            return pk.dist(arena, a, b);
        }
        self.policy.distance(
            // kanon-lint: allow(L006) callers pass live slots by construction
            self.slots[a].as_ref().expect("slot a live"),
            // kanon-lint: allow(L006) callers pass live slots by construction
            self.slots[b].as_ref().expect("slot b live"),
        )
    }

    /// Scans all active slots (except `slot`) for the two nearest
    /// neighbours of `slot`. Deterministic tie-break on slot index.
    fn scan_nearest(&self, slot: usize) -> Option<NearestPair> {
        kanon_obs::count(Counter::NnRescans, 1);
        let mut best: Option<Nearest> = None;
        let mut second: Option<Nearest> = None;
        for &other in &self.active {
            if other == slot {
                continue;
            }
            let d = self.dist_between(slot, other);
            let cand = Nearest {
                dist: d,
                target: other,
            };
            match best {
                None => best = Some(cand),
                Some(b) if closer(d, other, b.dist, b.target) => {
                    second = best;
                    best = Some(cand);
                }
                Some(_) => match second {
                    None => second = Some(cand),
                    Some(sn) if closer(d, other, sn.dist, sn.target) => second = Some(cand),
                    Some(_) => {}
                },
            }
        }
        best.map(|b| NearestPair {
            best: b,
            second: Runner::Exact(second),
        })
    }

    /// Adds a cluster as a new active slot; refreshes its own cache and
    /// lets every other active slot consider it as a nearer neighbour.
    fn add_active(&mut self, cluster: P::Payload) -> usize {
        let slot = self.slots.len();
        self.slots.push(Some(cluster));
        self.nearest.push(None);
        if let Some((pk, arena)) = &mut self.packed {
            // kanon-lint: allow(L006) the just-inserted slot is live
            let c = self.slots[slot].as_ref().expect("just-inserted slot live");
            pk.store(c, slot, arena);
        }
        // Let existing actives insert the newcomer into their top-2, so
        // that later fallbacks (repair) remain exact without rescans.
        // The O(active) distance evaluations are pure reads — computed in
        // parallel into the reused scratch buffer; the cache updates
        // below are applied serially in active order, so the bookkeeping
        // is identical to the serial pass. One evaluation is a handful
        // of fused probes, so fan out only past the measured cutover.
        let mut dists = std::mem::take(&mut self.dist_scratch);
        dists.clear();
        dists.resize(self.active.len(), 0.0);
        {
            let this = &*self;
            let eval = |idx: usize| this.dist_between(this.active[idx], slot);
            if this.active.len() >= MIN_PAR_SCAN_EVALS {
                kanon_parallel::for_each_chunk_mut(&mut dists, |base, chunk| {
                    for (off, d) in chunk.iter_mut().enumerate() {
                        *d = eval(base + off);
                    }
                });
            } else {
                for (idx, d) in dists.iter_mut().enumerate() {
                    *d = eval(idx);
                }
            }
        }
        for (&other, &d) in self.active.iter().zip(&dists) {
            let cand = Nearest {
                dist: d,
                target: slot,
            };
            match &mut self.nearest[other] {
                e @ None => {
                    *e = Some(NearestPair {
                        best: cand,
                        second: Runner::Exact(None),
                    })
                }
                Some(pair) => {
                    let b = pair.best;
                    let b_dead = self.slots[b.target].is_none();
                    if closer(d, slot, b.dist, b.target) {
                        // Newcomer becomes best. Pushing the (alive) old
                        // best into the runner slot restores exactness:
                        // every outside candidate was ≥ the old runner-up
                        // (Exact) or ≥ the old best (Unknown), and the old
                        // best is ≤ both bounds.
                        pair.second = if b_dead {
                            pair.second
                        } else {
                            Runner::Exact(Some(b))
                        };
                        pair.best = cand;
                    } else if b_dead && d == b.dist {
                        // Equal-distance adoption of a dead best: runner
                        // knowledge is unaffected.
                        pair.best = cand;
                    } else {
                        // Newcomer is not the best; it may only enter an
                        // *exact* runner slot (with an Unknown runner, an
                        // unseen candidate could still be closer than it).
                        if let Runner::Exact(sec) = &mut pair.second {
                            match sec {
                                None => *sec = Some(cand),
                                Some(sn) if closer(d, slot, sn.dist, sn.target) => {
                                    *sec = Some(cand)
                                }
                                Some(_) => {}
                            }
                        }
                    }
                }
            }
        }
        // The newcomer's own top-2 reuses the distances just computed —
        // policy distances are symmetric — inserted under the same
        // `closer` total order as scan_nearest, so no distance is
        // evaluated twice.
        let mut best: Option<Nearest> = None;
        let mut second: Option<Nearest> = None;
        for (idx, &d) in dists.iter().enumerate() {
            let other = self.active[idx];
            let cand = Nearest {
                dist: d,
                target: other,
            };
            match best {
                None => best = Some(cand),
                Some(b) if closer(d, other, b.dist, b.target) => {
                    second = best;
                    best = Some(cand);
                }
                Some(_) => match second {
                    None => second = Some(cand),
                    Some(sn) if closer(d, other, sn.dist, sn.target) => second = Some(cand),
                    Some(_) => {}
                },
            }
        }
        self.dist_scratch = dists;
        self.active.push(slot);
        self.nearest[slot] = best.map(|b| NearestPair {
            best: b,
            second: Runner::Exact(second),
        });
        slot
    }

    /// Removes a slot from the active set (retiring or maturing it).
    fn deactivate(&mut self, slot: usize) {
        if let Some(pos) = self.active.iter().position(|&s| s == slot) {
            self.active.swap_remove(pos);
        }
    }

    /// Repairs caches whose best target died: fall back to an *exact*
    /// runner-up when it is still alive (sound — see [`Runner`]),
    /// otherwise do a full top-2 rescan.
    fn repair_caches(&mut self) {
        // Cheap serial pass: keep fresh entries, fall back to an exact
        // live runner-up, and collect the slots that need a full rescan
        // (typically zero or a handful per merge — not worth threads).
        let mut need = std::mem::take(&mut self.repair_scratch);
        need.clear();
        for idx in 0..self.active.len() {
            let slot = self.active[idx];
            let repaired = match self.nearest[slot] {
                None => None,
                Some(pair) => {
                    if self.slots[pair.best.target].is_some() {
                        Some(pair) // fresh
                    } else {
                        match pair.second {
                            Runner::Exact(Some(sn)) if self.slots[sn.target].is_some() => {
                                kanon_obs::count(Counter::CacheRepairs, 1);
                                Some(NearestPair {
                                    best: sn,
                                    second: Runner::Unknown,
                                })
                            }
                            _ => None,
                        }
                    }
                }
            };
            match repaired {
                Some(p) => self.nearest[slot] = Some(p),
                None => need.push(slot),
            }
        }
        if need.is_empty() {
            self.repair_scratch = need;
            return;
        }
        // Full rescans are O(active) distance evaluations each — the
        // expensive, pure part. Few in number, so the per-item threshold
        // of `map` never triggers; gate on the total *evaluation* count
        // of the batch (rescans × actives), the measured break-even for
        // a warm-pool dispatch, and use the coarse variant.
        let rescanned: Vec<Option<NearestPair>> =
            if need.len() * self.active.len() >= MIN_PAR_SCAN_EVALS {
                let this = &*self;
                kanon_parallel::map_coarse(need.len(), |i| this.scan_nearest(need[i]))
            } else {
                need.iter().map(|&s| self.scan_nearest(s)).collect()
            };
        for (&slot, r) in need.iter().zip(rescanned) {
            self.nearest[slot] = r;
        }
        self.repair_scratch = need;
    }

    /// Debug-build check: the selected merge distance equals the true
    /// global minimum over all active pairs (the cache's exactness
    /// invariant). Tie *partners* may differ between the cache and a
    /// fresh rescan; the minimal *value* must not.
    #[cfg(debug_assertions)]
    fn is_global_min_distance(&self, d: f64) -> bool {
        let mut min = f64::INFINITY;
        for (x, &a) in self.active.iter().enumerate() {
            for &b in &self.active[x + 1..] {
                let dd = self.dist_between(a, b);
                if dd < min {
                    min = dd;
                }
            }
        }
        d.total_cmp(&min).is_eq() || (d - min).abs() < 1e-12
    }

    /// The active slot whose cached nearest neighbour is globally closest.
    fn closest_pair(&self) -> Option<(usize, usize, f64)> {
        let mut best: Option<(usize, usize, f64)> = None;
        for &slot in &self.active {
            if let Some(pair) = self.nearest[slot] {
                let n = pair.best;
                let better = match best {
                    None => true,
                    Some((bs, bt, bd)) => {
                        n.dist.total_cmp(&bd).is_lt()
                            || (n.dist == bd && (slot, n.target) < (bs, bt))
                    }
                };
                if better {
                    best = Some((slot, n.target, n.dist));
                }
            }
        }
        best
    }
}

/// Runs the closest-pair merge loop over `initial` clusters until at
/// most one is left active (or the work budget trips).
///
/// Per iteration: arm [`ClusterPolicy::FAIL_POINT`], checkpoint the
/// deterministic work budget, select the globally closest active pair
/// from the caches, merge it, and either output it (mature — recycling
/// whatever [`ClusterPolicy::on_mature`] evicts) or re-activate it.
/// Selection order is total (distance, then `(slot, target)`), so the
/// merge sequence — and therefore the output — is byte-identical at any
/// thread count.
pub fn run<P: ClusterPolicy>(policy: &P, initial: Vec<P::Payload>) -> RunOutcome<P::Payload> {
    // Budget-aware runs need a collector for `spent_work` to be
    // meaningful; install a private one when the caller has none.
    let budget = kanon_obs::work_budget();
    let _budget_obs = match (budget, kanon_obs::current()) {
        (Some(_), None) => Some(kanon_obs::Collector::new().install()),
        _ => None,
    };

    let n = initial.len();
    let slots: Vec<Option<P::Payload>> = initial.into_iter().map(Some).collect();
    // Mirror every initial cluster into the policy's packed arena (when
    // it has one). Capacity 2n+1 covers the worst case: every merge adds
    // one slot, and n clusters admit at most n−1 merges plus recycled
    // singletons; `store` appends densely past that anyway.
    let packed = policy.packed().map(|pk| {
        let mut arena = pk.new_arena(2 * n + 1);
        for (slot, c) in slots.iter().enumerate() {
            // kanon-lint: allow(L006) initial slots are all live
            pk.store(c.as_ref().expect("initial slot live"), slot, &mut arena);
        }
        (pk, arena)
    });
    let mut st: State<'_, P> = State {
        policy,
        slots,
        active: (0..n).collect(),
        nearest: vec![None; n],
        packed,
        repair_scratch: Vec::new(),
        dist_scratch: Vec::new(),
    };
    // Initial full nearest-neighbour scan: O(n²) distance evaluations,
    // pure per-slot — parallelized across slots. scan_nearest orders
    // candidates by the total order of `closer`, so the result is
    // identical at any thread count.
    st.nearest = kanon_parallel::map(n, |slot| st.scan_nearest(slot));

    let mut done: Vec<P::Payload> = Vec::new();
    let mut exhausted: Option<(u64, u64)> = None;
    while st.active.len() > 1 {
        kanon_fault::fail_point!(P::FAIL_POINT);
        if let Some(limit) = budget {
            let spent = kanon_obs::spent_work();
            if spent >= limit {
                exhausted = Some((limit, spent));
                break;
            }
        }
        // kanon-lint: allow(L006) two or more active clusters guarantee a closest pair
        let (i, j, _d) = st.closest_pair().expect("≥2 active clusters have a pair");
        #[cfg(debug_assertions)]
        assert!(
            st.is_global_min_distance(_d),
            "nearest-neighbour cache returned a non-minimal pair"
        );
        // kanon-lint: allow(L006) closest_pair returns live slots
        let a = st.slots[i].take().expect("slot i live");
        // kanon-lint: allow(L006) closest_pair returns live slots
        let b = st.slots[j].take().expect("slot j live");
        st.deactivate(i);
        st.deactivate(j);
        kanon_obs::count(Counter::MergesPerformed, 1);

        let mut merged = policy.merge(a, b);
        if policy.is_mature(&merged) {
            let recycled = policy.on_mature(&mut merged);
            done.push(merged);
            st.repair_caches();
            for c in recycled {
                st.add_active(c);
            }
        } else {
            st.add_active(merged);
            st.repair_caches();
        }
    }

    let remaining: Vec<P::Payload> = st
        .active
        .iter()
        // kanon-lint: allow(L006) active slots are live by construction
        .map(|&slot| st.slots[slot].take().expect("active slot live"))
        .collect();
    RunOutcome {
        done,
        remaining,
        exhausted,
    }
}

#[cfg(test)]
mod tests {
    //! Engine unit tests over a payload with a trivially checkable
    //! optimal structure: points on a line, distance = |a − b| over
    //! cluster means, maturity = size ≥ k. The algorithm-level pinning
    //! (byte-identity to naive references, budget semantics, fault
    //! injection) lives in the integration suites.

    use super::*;

    struct LinePolicy {
        k: usize,
    }

    #[derive(Debug, Clone)]
    struct Pts(Vec<i64>);

    impl Pts {
        fn mean(&self) -> f64 {
            self.0.iter().sum::<i64>() as f64 / self.0.len() as f64
        }
    }

    impl ClusterPolicy for LinePolicy {
        type Payload = Pts;
        const FAIL_POINT: &'static str = "algos/agglomerative/merge";

        fn distance(&self, a: &Pts, b: &Pts) -> f64 {
            (a.mean() - b.mean()).abs()
        }

        fn merge(&self, mut a: Pts, b: Pts) -> Pts {
            a.0.extend(b.0);
            a.0.sort_unstable();
            a
        }

        fn is_mature(&self, c: &Pts) -> bool {
            c.0.len() >= self.k
        }
    }

    #[test]
    fn pairs_of_adjacent_points_merge_first() {
        // Points clustered in tight pairs far apart: the engine must
        // unify exactly the natural pairs.
        let pts: Vec<Pts> = [0, 1, 100, 101, 200, 201]
            .iter()
            .map(|&v| Pts(vec![v]))
            .collect();
        let out = run(&LinePolicy { k: 2 }, pts);
        assert!(out.exhausted.is_none());
        assert!(out.remaining.is_empty());
        let mut done: Vec<Vec<i64>> = out.done.into_iter().map(|p| p.0).collect();
        done.sort();
        assert_eq!(done, vec![vec![0, 1], vec![100, 101], vec![200, 201]]);
    }

    #[test]
    fn leftover_stays_active_when_it_cannot_mature() {
        // Five points, k = 2: two pairs mature, one point remains.
        let pts: Vec<Pts> = [0, 1, 100, 101, 500]
            .iter()
            .map(|&v| Pts(vec![v]))
            .collect();
        let out = run(&LinePolicy { k: 2 }, pts);
        assert_eq!(out.done.len(), 2);
        assert_eq!(out.remaining.len(), 1);
        assert_eq!(out.remaining[0].0, vec![500]);
    }

    #[test]
    fn on_mature_recycles_evictions() {
        // A policy that evicts the largest point of every matured
        // cluster back into the pool: with k = 2 over four points, the
        // recycled singletons must keep merging until everything is
        // consumed (done clusters of exactly two, one leftover pair).
        struct Evicting;
        impl ClusterPolicy for Evicting {
            type Payload = Pts;
            const FAIL_POINT: &'static str = "algos/agglomerative/merge";
            fn distance(&self, a: &Pts, b: &Pts) -> f64 {
                (a.mean() - b.mean()).abs()
            }
            fn merge(&self, mut a: Pts, b: Pts) -> Pts {
                a.0.extend(b.0);
                a.0.sort_unstable();
                a
            }
            fn is_mature(&self, c: &Pts) -> bool {
                c.0.len() >= 3
            }
            fn on_mature(&self, c: &mut Pts) -> Vec<Pts> {
                // kanon-lint: allow(L006) matured clusters are non-empty
                let evicted = c.0.pop().expect("matured cluster is non-empty");
                vec![Pts(vec![evicted])]
            }
        }
        let pts: Vec<Pts> = (0..7).map(|v| Pts(vec![v])).collect();
        let out = run(&Evicting, pts);
        let covered: usize = out
            .done
            .iter()
            .chain(out.remaining.iter())
            .map(|p| p.0.len())
            .sum();
        assert_eq!(covered, 7, "recycling must not lose records");
        for d in &out.done {
            // Matured merges have 3 or 4 points (2+1 or 2+2) before the
            // hook evicts exactly one.
            assert!(
                d.0.len() == 2 || d.0.len() == 3,
                "on_mature shrank every output cluster: {:?}",
                d.0
            );
        }
        assert!(!out.done.is_empty());
    }

    #[test]
    fn budget_exhaustion_returns_all_remaining_clusters() {
        let pts: Vec<Pts> = (0..32).map(|v| Pts(vec![v * 10])).collect();
        let out = kanon_obs::with_work_budget(1, || run(&LinePolicy { k: 4 }, pts));
        let (budget, spent) = out.exhausted.expect("budget of 1 must trip");
        assert_eq!(budget, 1);
        assert!(spent >= 1);
        // Nothing merged: the initial scan alone exceeds the budget.
        assert!(out.done.is_empty());
        assert_eq!(out.remaining.len(), 32);
    }

    #[test]
    fn engine_counts_its_work() {
        let c = kanon_obs::Collector::new();
        {
            let _g = c.install();
            let pts: Vec<Pts> = (0..16).map(|v| Pts(vec![v * v])).collect();
            run(&LinePolicy { k: 4 }, pts);
        }
        let r = c.report();
        assert!(r.counter(Counter::MergesPerformed) > 0);
        assert!(r.counter(Counter::NnRescans) >= 16, "initial scan counts");
        // n = 16 singletons: the initial scan alone is 16·15 evaluations.
        assert!(r.counter(Counter::ClusterDistEvals) >= 240);
    }
}
