//! Algorithm 5 of Sec. V-B.2: the (1,k)-anonymizer.
//!
//! Given any generalization `g(D)` of `D`, further generalizes records of
//! `g(D)` until every *original* record is consistent with at least `k`
//! generalized records. Applied to a (k,1)-anonymization, the result is a
//! (k,k)-anonymization — the paper's recommended practical notion.
//!
//! For each original record `R_i` with fewer than `k` consistent
//! generalized records, the algorithm scans the non-consistent generalized
//! records `R̄_j` and upgrades the `k − ℓ` of them that are cheapest to
//! stretch, i.e. minimize `c(R̄_j + R_i) − c(R̄_j)`.

use crate::cost::CostContext;
use crate::k1::GenOutput;
use kanon_core::error::{CoreError, Result};
use kanon_core::generalize::{is_consistent, record_join_ground};
use kanon_core::table::{check_aligned, GeneralizedTable, Table};
use kanon_measures::NodeCostTable;

/// Runs Algorithm 5: returns a (1,k)-anonymization `g'(D)` that
/// generalizes the input `g(D)` row-wise.
///
/// The input may be any generalization of `D` (commonly the output of
/// Algorithm 3 or 4). The update is sequential in `i`, exactly as in the
/// paper — later records see earlier upgrades, which is what keeps the
/// total extra generalization small.
///
/// Panicking wrapper over [`crate::try_one_k_anonymize`].
pub fn one_k_anonymize(
    table: &Table,
    gtable: &GeneralizedTable,
    costs: &NodeCostTable,
    k: usize,
) -> Result<GenOutput> {
    crate::fallible::unwrap_or_repanic(crate::try_one_k_anonymize(table, gtable, costs, k))
}

pub(crate) fn one_k_impl(
    table: &Table,
    gtable: &GeneralizedTable,
    costs: &NodeCostTable,
    k: usize,
) -> Result<GenOutput> {
    let n = table.num_rows();
    if k == 0 || k > n {
        return Err(CoreError::InvalidK { k, n });
    }
    check_aligned(table, gtable)?;
    let _span = kanon_obs::span("one_k_anonymize");
    let _ctx = CostContext::new(table, costs); // validates attr counts
    let schema = table.schema();
    let mut out = gtable.clone();

    for i in 0..n {
        kanon_fault::fail_point!("algos/one_k/upgrade");
        let rec = table.row(i);
        // ℓ = number of generalized records consistent with R_i.
        let consistent: Vec<bool> = (0..n)
            .map(|j| is_consistent(schema, rec, out.row(j)))
            .collect();
        let ell = consistent.iter().filter(|&&c| c).count();
        if ell >= k {
            continue;
        }
        // Cheapest-to-stretch non-consistent records.
        let mut cand: Vec<(f64, usize)> = (0..n)
            .filter(|&j| !consistent[j])
            .map(|j| {
                let upgraded = record_join_ground(schema, out.row(j), rec);
                let delta = costs.record_cost(&upgraded) - costs.record_cost(out.row(j));
                (delta, j)
            })
            .collect();
        let need = k - ell;
        kanon_obs::count(kanon_obs::Counter::OneKUpgrades, need as u64);
        debug_assert!(cand.len() >= need, "n ≥ k guarantees enough candidates");
        cand.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        for &(_, j) in &cand[..need] {
            let upgraded = record_join_ground(schema, out.row(j), rec);
            *out.row_mut(j) = upgraded;
        }
    }

    let loss = costs.table_loss(&out);
    Ok(GenOutput { table: out, loss })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::k1::{k1_expansion, k1_nearest_neighbors};
    use kanon_core::record::Record;
    use kanon_core::schema::{SchemaBuilder, SharedSchema};
    use kanon_measures::{EntropyMeasure, LmMeasure};
    use std::sync::Arc;

    fn schema() -> SharedSchema {
        SchemaBuilder::new()
            .categorical_with_groups(
                "c",
                ["a", "b", "c", "d", "e", "f"],
                &[&["a", "b"], &["c", "d"], &["e", "f"]],
            )
            .categorical("x", ["p", "q"])
            .build_shared()
            .unwrap()
    }

    fn table(s: &SharedSchema) -> Table {
        let rows = vec![
            Record::from_raw([0, 0]),
            Record::from_raw([1, 0]),
            Record::from_raw([2, 1]),
            Record::from_raw([3, 1]),
            Record::from_raw([4, 0]),
            Record::from_raw([5, 1]),
        ];
        Table::new(Arc::clone(s), rows).unwrap()
    }

    fn min_left_degree(t: &Table, g: &GeneralizedTable) -> usize {
        let schema = t.schema();
        t.rows()
            .iter()
            .map(|r| {
                g.rows()
                    .iter()
                    .filter(|gr| is_consistent(schema, r, gr))
                    .count()
            })
            .min()
            .unwrap()
    }

    #[test]
    fn upgrades_identity_to_1k() {
        let s = schema();
        let t = table(&s);
        let costs = NodeCostTable::compute(&t, &EntropyMeasure);
        let idg = GeneralizedTable::identity_of(&t);
        for k in [2, 3] {
            let out = one_k_anonymize(&t, &idg, &costs, k).unwrap();
            assert!(min_left_degree(&t, &out.table) >= k, "k={k}");
            // Output still generalizes the original row-wise.
            assert!(kanon_core::generalize::is_generalization_of(&t, &out.table).unwrap());
        }
    }

    #[test]
    fn composing_with_k1_gives_kk() {
        let s = schema();
        let t = table(&s);
        let costs = NodeCostTable::compute(&t, &LmMeasure);
        for k in [2, 3] {
            for k1 in [
                k1_nearest_neighbors(&t, &costs, k).unwrap(),
                k1_expansion(&t, &costs, k).unwrap(),
            ] {
                let out = one_k_anonymize(&t, &k1.table, &costs, k).unwrap();
                // (1,k): every original consistent with ≥ k generalized.
                assert!(min_left_degree(&t, &out.table) >= k);
                // (k,1): preserved because rows only got MORE general.
                let schema = t.schema();
                for gr in out.table.rows() {
                    let cnt = t
                        .rows()
                        .iter()
                        .filter(|r| is_consistent(schema, r, gr))
                        .count();
                    assert!(cnt >= k);
                }
            }
        }
    }

    #[test]
    fn already_1k_input_is_unchanged() {
        let s = schema();
        let t = table(&s);
        let costs = NodeCostTable::compute(&t, &EntropyMeasure);
        // Fully suppressed table is (1,n)-anonymous already.
        let star = kanon_core::GeneralizedRecord::new(s.suppressed_nodes());
        let g =
            GeneralizedTable::new(Arc::clone(&s), (0..6).map(|_| star.clone()).collect()).unwrap();
        let out = one_k_anonymize(&t, &g, &costs, 3).unwrap();
        assert_eq!(out.table.rows(), g.rows());
    }

    #[test]
    fn loss_never_decreases_relative_to_input() {
        // Algorithm 5 only generalizes further, so loss can only grow
        // under a monotone measure such as LM.
        let s = schema();
        let t = table(&s);
        let costs = NodeCostTable::compute(&t, &LmMeasure);
        let k1 = k1_expansion(&t, &costs, 2).unwrap();
        let out = one_k_anonymize(&t, &k1.table, &costs, 2).unwrap();
        assert!(out.loss >= k1.loss - 1e-12);
    }

    #[test]
    fn invalid_k_rejected() {
        let s = schema();
        let t = table(&s);
        let costs = NodeCostTable::compute(&t, &EntropyMeasure);
        let idg = GeneralizedTable::identity_of(&t);
        assert!(one_k_anonymize(&t, &idg, &costs, 0).is_err());
        assert!(one_k_anonymize(&t, &idg, &costs, 7).is_err());
    }
}
