//! Algorithms 3 and 4 of Sec. V-B.1: (k,1)-anonymizers.
//!
//! A (k,1)-anonymization generalizes every record independently so that
//! its generalized form is consistent with at least `k` original records.
//!
//! * **Algorithm 3** ([`k1_nearest_neighbors`]) joins every record with
//!   its `k−1` nearest records under the pairwise cost `d({R_i, R_j})`;
//!   Prop. 5.1 gives it a `(k−1)`-approximation guarantee.
//! * **Algorithm 4** ([`k1_expansion`]) grows each record's set greedily,
//!   at every step adding the record minimizing the *marginal* cost
//!   `d(S ∪ {R_j}) − d(S)`. No guarantee, but the paper found it to
//!   perform much better in practice.
//!
//! Both run in O(k·n²) and are embarrassingly parallel across rows; the
//! row loop runs on `kanon_parallel::map` (the per-row computation is
//! pure, so results are identical at any thread count).

use crate::cost::CostContext;
use kanon_core::error::{CoreError, Result};
use kanon_core::table::{GeneralizedTable, Table};
use kanon_measures::NodeCostTable;
use std::sync::Arc;

/// Output of an anonymizer that produces a generalized table without an
/// underlying clustering ((k,1), (k,k), global (1,k)).
#[derive(Debug, Clone)]
pub struct GenOutput {
    /// The generalized table.
    pub table: GeneralizedTable,
    /// The information loss `Π(D, g(D))` under the supplied measure.
    pub loss: f64,
}

/// Algorithm 3: (k,1)-anonymization by nearest neighbours.
///
/// For each record `R_i`, finds the `k−1` records minimizing
/// `d({R_i, R_j})` (deterministic tie-break on the row index) and
/// publishes the closure of the k-set.
pub fn k1_nearest_neighbors(table: &Table, costs: &NodeCostTable, k: usize) -> Result<GenOutput> {
    let n = table.num_rows();
    if k == 0 || k > n {
        return Err(CoreError::InvalidK { k, n });
    }
    let _span = kanon_obs::span("k1_nearest_neighbors");
    let ctx = CostContext::new(table, costs);

    let rows = kanon_parallel::map(n, |i| {
        kanon_fault::fail_point!("algos/k1/row");
        kanon_obs::count(kanon_obs::Counter::K1RowsExpanded, 1);
        if k == 1 {
            return ctx.to_record(&ctx.leaf_nodes(i));
        }
        // Distances to every other record; select the k−1 smallest.
        let mut cand: Vec<(f64, u32)> = (0..n)
            .filter(|&j| j != i)
            .map(|j| (ctx.pair_cost(i, j), j as u32))
            .collect();
        cand.select_nth_unstable_by(k - 2, |a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        let mut nodes = ctx.leaf_nodes(i);
        for &(_, j) in &cand[..k - 1] {
            ctx.join_row_into(&mut nodes, j as usize);
        }
        ctx.to_record(&nodes)
    });

    let gtable = GeneralizedTable::new_unchecked(Arc::clone(table.schema()), rows);
    let loss = costs.table_loss(&gtable);
    Ok(GenOutput {
        table: gtable,
        loss,
    })
}

/// Algorithm 4: (k,1)-anonymization by greedy expansion.
///
/// For each record, starts from the singleton `S_i = {R_i}` and `k−1`
/// times adds the record `R_j ∉ S_i` minimizing
/// `dist(S_i, R_j) = d(S_i ∪ {R_j}) − d(S_i)` (tie-break on row index),
/// then publishes the closure of `S_i`.
pub fn k1_expansion(table: &Table, costs: &NodeCostTable, k: usize) -> Result<GenOutput> {
    let n = table.num_rows();
    if k == 0 || k > n {
        return Err(CoreError::InvalidK { k, n });
    }
    let _span = kanon_obs::span("k1_expansion");
    let ctx = CostContext::new(table, costs);

    let rows = kanon_parallel::map(n, |i| {
        kanon_fault::fail_point!("algos/k1/row");
        kanon_obs::count(kanon_obs::Counter::K1RowsExpanded, 1);
        let mut nodes = ctx.leaf_nodes(i);
        if k == 1 {
            return ctx.to_record(&nodes);
        }
        let mut in_set = vec![false; n];
        in_set[i] = true;
        let mut cost = ctx.cost(&nodes);
        for _ in 1..k {
            let mut best_j = usize::MAX;
            let mut best_delta = f64::INFINITY;
            for (j, &taken) in in_set.iter().enumerate() {
                if taken {
                    continue;
                }
                let delta = ctx.join_row_cost(&nodes, j) - cost;
                if delta.total_cmp(&best_delta).is_lt() {
                    best_delta = delta;
                    best_j = j;
                }
            }
            debug_assert_ne!(best_j, usize::MAX);
            in_set[best_j] = true;
            ctx.join_row_into(&mut nodes, best_j);
            cost = ctx.cost(&nodes);
        }
        ctx.to_record(&nodes)
    });

    let gtable = GeneralizedTable::new_unchecked(Arc::clone(table.schema()), rows);
    let loss = costs.table_loss(&gtable);
    Ok(GenOutput {
        table: gtable,
        loss,
    })
}

/// Exhaustive optimal (k,1)-anonymization for tiny tables (test oracle):
/// for every record, tries **all** `(k−1)`-subsets of the other records
/// and keeps the cheapest closure. O(n · C(n−1, k−1)) — use only for
/// n ≲ 15.
pub fn k1_optimal_bruteforce(table: &Table, costs: &NodeCostTable, k: usize) -> Result<GenOutput> {
    let n = table.num_rows();
    if k == 0 || k > n {
        return Err(CoreError::InvalidK { k, n });
    }
    let ctx = CostContext::new(table, costs);

    /// Advances `combo` to the next lexicographic (|combo|)-combination of
    /// `0..n`; returns false when exhausted.
    fn next_combination(combo: &mut [usize], n: usize) -> bool {
        let k = combo.len();
        let mut i = k;
        while i > 0 {
            i -= 1;
            if combo[i] < n - k + i {
                combo[i] += 1;
                for j in i + 1..k {
                    combo[j] = combo[j - 1] + 1;
                }
                return true;
            }
        }
        false
    }

    let mut rows = Vec::with_capacity(n);
    for i in 0..n {
        let others: Vec<usize> = (0..n).filter(|&j| j != i).collect();
        let mut best_nodes = None;
        let mut best_cost = f64::INFINITY;
        let mut combo: Vec<usize> = (0..k - 1).collect(); // indices into others
        loop {
            let mut nodes = ctx.leaf_nodes(i);
            for &ci in &combo {
                ctx.join_row_into(&mut nodes, others[ci]);
            }
            let c = ctx.cost(&nodes);
            if c.total_cmp(&best_cost).is_lt() {
                best_cost = c;
                best_nodes = Some(nodes);
            }
            if !next_combination(&mut combo, others.len()) {
                break;
            }
        }
        // kanon-lint: allow(L006) the combo loop always runs at least once
        rows.push(ctx.to_record(&best_nodes.expect("at least one combo")));
    }
    let gtable = GeneralizedTable::new_unchecked(Arc::clone(table.schema()), rows);
    let loss = costs.table_loss(&gtable);
    Ok(GenOutput {
        table: gtable,
        loss,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use kanon_core::record::Record;
    use kanon_core::schema::{SchemaBuilder, SharedSchema};
    use kanon_measures::{EntropyMeasure, LmMeasure};

    fn schema() -> SharedSchema {
        SchemaBuilder::new()
            .categorical_with_groups(
                "c",
                ["a", "b", "c", "d", "e", "f"],
                &[&["a", "b"], &["c", "d"], &["e", "f"], &["a", "b", "c", "d"]],
            )
            .categorical("x", ["p", "q"])
            .build_shared()
            .unwrap()
    }

    fn table(s: &SharedSchema) -> Table {
        let rows = vec![
            Record::from_raw([0, 0]),
            Record::from_raw([1, 0]),
            Record::from_raw([2, 1]),
            Record::from_raw([3, 1]),
            Record::from_raw([4, 0]),
            Record::from_raw([5, 0]),
        ];
        Table::new(Arc::clone(s), rows).unwrap()
    }

    fn check_k1(t: &Table, g: &GeneralizedTable, k: usize) {
        // Every generalized record must be consistent with ≥ k originals.
        let schema = t.schema();
        for grec in g.rows() {
            let count = t
                .rows()
                .iter()
                .filter(|r| kanon_core::generalize::is_consistent(schema, r, grec))
                .count();
            assert!(count >= k, "record covers only {count} originals");
        }
    }

    #[test]
    fn nearest_neighbors_produces_k1() {
        let s = schema();
        let t = table(&s);
        let costs = NodeCostTable::compute(&t, &EntropyMeasure);
        for k in [1, 2, 3, 6] {
            let out = k1_nearest_neighbors(&t, &costs, k).unwrap();
            check_k1(&t, &out.table, k);
        }
    }

    #[test]
    fn expansion_produces_k1() {
        let s = schema();
        let t = table(&s);
        let costs = NodeCostTable::compute(&t, &LmMeasure);
        for k in [1, 2, 3, 6] {
            let out = k1_expansion(&t, &costs, k).unwrap();
            check_k1(&t, &out.table, k);
        }
    }

    #[test]
    fn k1_is_cheaper_than_k_anonymity() {
        // (k,1) relaxes k-anonymity, so the best (k,1) loss can only be ≤
        // the loss of any k-anonymization. Compare against the
        // agglomerative output.
        use crate::agglomerative::{agglomerative_k_anonymize, AgglomerativeConfig};
        let s = schema();
        let t = table(&s);
        let costs = NodeCostTable::compute(&t, &EntropyMeasure);
        let kanon = agglomerative_k_anonymize(&t, &costs, &AgglomerativeConfig::new(2)).unwrap();
        let k1 = k1_expansion(&t, &costs, 2).unwrap();
        assert!(k1.loss <= kanon.loss + 1e-12);
    }

    #[test]
    fn expansion_never_worse_than_nn_on_these_inputs() {
        // Matches the paper's observation that Algorithm 4 beats
        // Algorithm 3 in practice (not a theorem — checked on this input).
        let s = schema();
        let t = table(&s);
        for k in [2, 3] {
            let costs = NodeCostTable::compute(&t, &EntropyMeasure);
            let nn = k1_nearest_neighbors(&t, &costs, k).unwrap();
            let exp = k1_expansion(&t, &costs, k).unwrap();
            assert!(exp.loss <= nn.loss + 1e-9, "k={k}");
        }
    }

    #[test]
    fn bruteforce_is_lower_bound() {
        let s = schema();
        let t = table(&s);
        let costs = NodeCostTable::compute(&t, &LmMeasure);
        for k in [2, 3] {
            let opt = k1_optimal_bruteforce(&t, &costs, k).unwrap();
            check_k1(&t, &opt.table, k);
            let nn = k1_nearest_neighbors(&t, &costs, k).unwrap();
            let exp = k1_expansion(&t, &costs, k).unwrap();
            assert!(opt.loss <= nn.loss + 1e-12);
            assert!(opt.loss <= exp.loss + 1e-12);
        }
    }

    #[test]
    fn nn_approximation_bound_holds() {
        // Prop. 5.1: Algorithm 3 is a (k−1)-approximation of optimal (k,1).
        let s = schema();
        let t = table(&s);
        let costs = NodeCostTable::compute(&t, &LmMeasure);
        for k in [2, 3] {
            let opt = k1_optimal_bruteforce(&t, &costs, k).unwrap();
            let nn = k1_nearest_neighbors(&t, &costs, k).unwrap();
            assert!(
                nn.loss <= (k - 1) as f64 * opt.loss + 1e-9,
                "k={k}: {} > {} × {}",
                nn.loss,
                k - 1,
                opt.loss
            );
        }
    }

    #[test]
    fn invalid_k_rejected() {
        let s = schema();
        let t = table(&s);
        let costs = NodeCostTable::compute(&t, &EntropyMeasure);
        assert!(k1_nearest_neighbors(&t, &costs, 0).is_err());
        assert!(k1_nearest_neighbors(&t, &costs, 7).is_err());
        assert!(k1_expansion(&t, &costs, 0).is_err());
        assert!(k1_expansion(&t, &costs, 7).is_err());
    }

    #[test]
    fn parallel_matches_sequential() {
        // Build a table big enough to trigger the threaded path and check
        // it agrees with a sequential reference.
        let s = SchemaBuilder::new()
            .categorical_with_groups("c", ["a", "b", "c", "d"], &[&["a", "b"], &["c", "d"]])
            .build_shared()
            .unwrap();
        let rows: Vec<Record> = (0..400).map(|i| Record::from_raw([i % 4])).collect();
        let t = Table::new(Arc::clone(&s), rows).unwrap();
        let costs = NodeCostTable::compute(&t, &EntropyMeasure);
        let par = k1_expansion(&t, &costs, 3).unwrap();
        // Sequential reference via the same per-row logic at n<256 is not
        // reachable here, so recompute twice and compare: determinism of
        // the parallel path.
        let par2 = k1_expansion(&t, &costs, 3).unwrap();
        assert_eq!(par.table.rows(), par2.table.rows());
        check_k1(&t, &par.table, 3);
    }
}
