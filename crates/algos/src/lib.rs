//! # kanon-algos
//!
//! The anonymization algorithms of *"k-Anonymization Revisited"*
//! (Gionis, Mazza, Tassa; ICDE 2008), Sec. V, plus the baselines they are
//! evaluated against:
//!
//! | Paper artefact | Here |
//! |---|---|
//! | Algorithm 1 (basic agglomerative k-anonymizer) | [`agglomerative_k_anonymize`] |
//! | Algorithm 2 (modified agglomerative) | [`AgglomerativeConfig::modified`] |
//! | Distance functions (8)–(11) + Nergiz–Clifton | [`ClusterDistance`] |
//! | Algorithm 3 ((k,1) by nearest neighbours) | [`k1_nearest_neighbors`] |
//! | Algorithm 4 ((k,1) by expansion) | [`k1_expansion`] |
//! | Algorithm 5 ((1,k)-anonymizer) | [`one_k_anonymize`] |
//! | Algorithm 6 ((k,k) → global (1,k)) | [`global_1k_from_kk`] |
//! | Forest baseline (Aggarwal et al., 3(k−1)-approx) | [`forest_k_anonymize`] |
//! | Exhaustive optima (test oracles) | [`optimal_k_anonymize`], [`k1_optimal_bruteforce`] |
//! | End-to-end pipelines | [`kk_anonymize`], [`global_1k_anonymize`], [`best_k_anonymize`] |
//! | Shard-and-conquer scale-out (n → 10⁶) | [`sharded_k_anonymize`], [`sharded_l_diverse_k_anonymize`] |
//!
//! All algorithms are parameterized by a precomputed
//! [`kanon_measures::NodeCostTable`], so they work identically under the
//! entropy measure (Eq. 3), the LM measure (Eq. 4), or any custom
//! [`kanon_measures::EntryMeasure`].
//!
//! ```
//! use kanon_algos::{kk_anonymize, KkConfig};
//! use kanon_core::{Record, SchemaBuilder, Table};
//! use kanon_measures::{LmMeasure, NodeCostTable};
//! use std::sync::Arc;
//!
//! let schema = SchemaBuilder::new()
//!     .numeric_with_intervals("age", 20, 39, &[5, 10])
//!     .build_shared()
//!     .unwrap();
//! let rows = (0..20).map(|i| Record::from_raw([i])).collect();
//! let table = Table::new(Arc::clone(&schema), rows).unwrap();
//! let costs = NodeCostTable::compute(&table, &LmMeasure);
//!
//! let out = kk_anonymize(&table, &costs, &KkConfig::new(5)).unwrap();
//! // Every 5-year band holds 5 records: the (k,1) stage pays one band…
//! assert!(out.loss > 0.0 && out.loss < 1.0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod agglomerative;
pub mod cost;
pub mod distance;
pub mod engine;
pub mod fallible;
pub mod forest;
pub mod fulldomain;
pub mod global_one_k;
pub mod k1;
pub mod ldiversity;
pub mod mdav;
pub mod mondrian;
pub mod one_k;
pub mod optimal;
pub mod pipeline;
pub mod samarati;
pub mod shard;

pub use agglomerative::{
    agglomerative_k_anonymize, nn_rescan_pass, AgglomerativeConfig, KAnonOutput,
};
pub use cost::CostContext;
pub use distance::{ClusterDistance, DEFAULT_EPSILON};
pub use engine::{ClusterPolicy, RunOutcome};
pub use fallible::{
    error_from_panic, try_agglomerative_k_anonymize, try_best_k_anonymize, try_forest_k_anonymize,
    try_fulldomain_k_anonymize, try_global_1k_anonymize, try_k1_anonymize, try_kk_anonymize,
    try_l_diverse_k_anonymize, try_mdav_k_anonymize, try_mondrian_k_anonymize,
    try_mondrian_k_anonymize_rooted, try_one_k_anonymize, try_optimal_k_anonymize,
    try_samarati_k_anonymize, try_sharded_k_anonymize, try_sharded_l_diverse_k_anonymize, Budgeted,
};
pub use forest::forest_k_anonymize;
pub use fulldomain::{fulldomain_k_anonymize, FullDomainOutput, RecodingLevels};
pub use global_one_k::{global_1k_from_kk, GlobalOutput};
pub use k1::{k1_expansion, k1_nearest_neighbors, k1_optimal_bruteforce, GenOutput};
pub use ldiversity::{l_diverse_k_anonymize, LDiverseConfig};
pub use mdav::mdav_k_anonymize;
pub use mondrian::{mondrian_k_anonymize, mondrian_k_anonymize_rooted};
pub use one_k::one_k_anonymize;
pub use optimal::optimal_k_anonymize;
pub use pipeline::{
    best_k_anonymize, global_1k_anonymize, k1_anonymize, kk_anonymize, GlobalConfig, K1Method,
    KkConfig,
};
pub use samarati::{samarati_k_anonymize, SamaratiOutput};
pub use shard::{
    sharded_k_anonymize, sharded_l_diverse_k_anonymize, ShardConfig, ShardStats, ShardedOutput,
};
