//! Shard-and-conquer pipeline: k-anonymize (or ℓ-diversify) tables far
//! beyond what the quadratic clustering engines can touch monolithically.
//!
//! The paper's agglomerative family is Θ(n²) in distance evaluations, so
//! a million rows is out of reach directly. This module makes it
//! tractable in three deterministic phases:
//!
//! 1. **Partition** — a Mondrian-style top-down pass (reusing
//!    [`crate::mondrian`]'s split machinery, including its rooted-cell
//!    handling) cuts the table into shards of at most
//!    [`ShardConfig::shard_max`] rows. Splits are chosen for *balance*
//!    (smallest size imbalance, lowest attribute index on ties) and are
//!    only taken when both sides keep ≥ k rows — and, under
//!    ℓ-diversity, ≥ ℓ distinct sensitive values — so every shard is
//!    independently solvable. A cluster with no feasible split stays as
//!    one oversized shard rather than violating the constraints.
//! 2. **Conquer** — each shard runs the shared clustering engine
//!    (agglomerative, or its ℓ-diverse variant) as a sub-table against
//!    the *global* [`NodeCostTable`], so per-shard losses are comparable
//!    and the union of per-shard clusterings is globally valid. Shards
//!    are dispatched on the persistent worker pool, one coarse task per
//!    shard with the remaining threads split evenly inside
//!    (`with_threads`), exactly like the best-k grid — byte-identical
//!    output at any `KANON_THREADS`.
//! 3. **Boundary repair** — shard borders can leave *twin* clusters on
//!    either side that generalize to the very same closure; merging such
//!    twins is free (the generalized table is unchanged) and undoes the
//!    needless fragmentation the cut introduced. A defensive second pass
//!    re-merges any cluster that somehow fails global k (or ℓ) into its
//!    cheapest neighbour; with valid per-shard outputs it never fires,
//!    but it turns "impossible" states into repairs instead of invalid
//!    output. Repairs are counted as `boundary_repairs`.
//!
//! The work budget (`KANON_WORK_BUDGET`) is honoured at every phase:
//! partition checkpoints drain the queue into coarser shards, the
//! per-shard runs degrade internally, and the whole pipeline reports
//! [`Budgeted::BudgetExhausted`] while still returning a valid result.

use crate::agglomerative::{agglomerative_impl, AgglomerativeConfig, KAnonOutput};
use crate::cost::CostContext;
use crate::distance::ClusterDistance;
use crate::fallible::{unwrap_or_repanic, Budgeted};
use crate::ldiversity::{ldiversity_impl, LDiverseConfig};
use crate::mondrian::{closure_rooted, group_by_child, pack_two_bins, RootedCells};
use kanon_core::cluster::Clustering;
use kanon_core::error::{CoreError, Result};
use kanon_core::table::Table;
use kanon_measures::NodeCostTable;
use std::collections::BTreeSet;
use std::sync::Arc;

/// Failpoint name firing once per shard-partition split attempt (see the
/// `kanon-fault` catalogue).
pub const SHARD_FAIL_POINT: &str = "algos/shard/partition";

/// Configuration for the shard-and-conquer pipeline.
#[derive(Debug, Clone)]
pub struct ShardConfig {
    /// The anonymity parameter `k ≥ 1`.
    pub k: usize,
    /// The diversity parameter `ℓ ≥ 1`; only consulted by
    /// [`sharded_l_diverse_k_anonymize`].
    pub l: usize,
    /// Maximum rows per shard. Defaults to `KANON_SHARD_MAX` (or
    /// [`kanon_core::config::SHARD_MAX_DEFAULT`]).
    pub shard_max: usize,
    /// The cluster distance function used inside each shard.
    pub distance: ClusterDistance,
    /// Apply the Algorithm 2 correction inside each shard (k-anonymity
    /// only; the ℓ-diverse engine has no modified variant).
    pub modified: bool,
    /// `(data_row, attr)` cells whose stored leaf is the
    /// `--on-bad-row root` placeholder (see
    /// `IngestReport::rooted_cells` (kanon-data)); the
    /// partitioner treats them as the hierarchy root.
    pub rooted_cells: Vec<(usize, usize)>,
}

impl ShardConfig {
    /// Shard-and-conquer k-anonymity with the default shard cap and
    /// distance (D3).
    pub fn new(k: usize) -> Self {
        ShardConfig {
            k,
            l: 1,
            shard_max: kanon_core::config::default_shard_max(),
            distance: ClusterDistance::default(),
            modified: false,
            rooted_cells: Vec::new(),
        }
    }

    /// Sets the diversity parameter ℓ.
    pub fn with_l(mut self, l: usize) -> Self {
        self.l = l;
        self
    }

    /// Sets the shard size cap.
    pub fn with_shard_max(mut self, shard_max: usize) -> Self {
        self.shard_max = shard_max;
        self
    }

    /// Selects a distance function.
    pub fn with_distance(mut self, d: ClusterDistance) -> Self {
        self.distance = d;
        self
    }

    /// Enables the Algorithm 2 modification for the per-shard runs.
    pub fn with_modified(mut self, m: bool) -> Self {
        self.modified = m;
        self
    }

    /// Supplies the rooted cells of an ingest report.
    pub fn with_rooted_cells(mut self, cells: Vec<(usize, usize)>) -> Self {
        self.rooted_cells = cells;
        self
    }
}

/// Per-run shard statistics (mirrored into the `kanon-obs` counters
/// `shards_built`, `shard_rows_max`, `boundary_repairs`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardStats {
    /// Number of shards the partition phase produced.
    pub shards_built: usize,
    /// Rows in the largest shard (≤ `shard_max` unless some cluster had
    /// no feasible split).
    pub shard_rows_max: usize,
    /// Cluster merges performed by the boundary-repair phase.
    pub boundary_repairs: usize,
}

/// Result of a shard-and-conquer run.
#[derive(Debug, Clone)]
pub struct ShardedOutput {
    /// The globally valid clustering, generalized table and loss.
    pub out: KAnonOutput,
    /// How the table was sharded and repaired.
    pub stats: ShardStats,
}

/// Shard-and-conquer k-anonymization.
///
/// Panicking wrapper over [`crate::try_sharded_k_anonymize`]; budget
/// exhaustion silently yields the valid degraded result.
pub fn sharded_k_anonymize(
    table: &Table,
    costs: &NodeCostTable,
    cfg: &ShardConfig,
) -> Result<ShardedOutput> {
    unwrap_or_repanic(crate::try_sharded_k_anonymize(table, costs, cfg).map(Budgeted::into_inner))
}

/// Shard-and-conquer k-anonymization with distinct-ℓ-diversity
/// (`sensitive[i]` is row i's sensitive value; `cfg.l` is ℓ).
pub fn sharded_l_diverse_k_anonymize(
    table: &Table,
    costs: &NodeCostTable,
    sensitive: &[u32],
    cfg: &ShardConfig,
) -> Result<ShardedOutput> {
    unwrap_or_repanic(
        crate::try_sharded_l_diverse_k_anonymize(table, costs, sensitive, cfg)
            .map(Budgeted::into_inner),
    )
}

/// Distinct sensitive values among `members`.
fn distinct_of(sensitive: &[u32], members: &[u32]) -> usize {
    members
        .iter()
        .map(|&r| sensitive[r as usize])
        .collect::<BTreeSet<u32>>()
        .len()
}

/// The shard-and-conquer implementation. `sensitive` selects the
/// ℓ-diverse engine (with `cfg.l`) for the per-shard runs.
pub(crate) fn sharded_impl(
    table: &Table,
    costs: &NodeCostTable,
    sensitive: Option<&[u32]>,
    cfg: &ShardConfig,
) -> Result<Budgeted<ShardedOutput>> {
    let n = table.num_rows();
    if cfg.k == 0 || cfg.k > n {
        return Err(CoreError::InvalidK { k: cfg.k, n });
    }
    if cfg.shard_max == 0 {
        return Err(CoreError::InconsistentInput(
            "shard-max must be at least 1".to_string(),
        ));
    }
    if let Some(s) = sensitive {
        if s.len() != n {
            return Err(CoreError::RowCountMismatch {
                left: n,
                right: s.len(),
            });
        }
    }
    let schema = table.schema().as_ref();
    let rooted = RootedCells::new(n, schema.num_attrs(), &cfg.rooted_cells)?;
    let _span = kanon_obs::span("sharded");
    let ctx = CostContext::new(table, costs);

    let budget = kanon_obs::work_budget();
    let _budget_obs = match (budget, kanon_obs::current()) {
        (Some(_), None) => Some(kanon_obs::Collector::new().install()),
        _ => None,
    };
    let mut exhausted: Option<(u64, u64)> = None;

    // Phase 1: partition into bounded shards (serial, deterministic).
    let mut queue: Vec<Vec<u32>> = vec![(0..n as u32).collect()];
    let mut shards: Vec<Vec<u32>> = Vec::new();
    while let Some(members) = queue.pop() {
        if members.len() <= cfg.shard_max {
            shards.push(members);
            continue;
        }
        kanon_fault::fail_point!(SHARD_FAIL_POINT);
        // Degradation keeps every queue element as a (coarser) shard:
        // the per-shard engines still enforce k/ℓ, so validity holds.
        if let Some(limit) = budget {
            let spent = kanon_obs::spent_work();
            if spent >= limit {
                exhausted = Some((limit, spent));
                shards.push(members);
                shards.append(&mut queue);
                break;
            }
        }
        let closure = closure_rooted(&ctx, schema, &rooted, &members);
        // Most balanced feasible binary split; ties to the lowest
        // attribute (strict `<` over ascending attribute order). No cost
        // evaluations here — balance is what bounds shard sizes fast.
        let mut best: Option<(usize, Vec<u32>, Vec<u32>)> = None;
        for (j, &node) in closure.iter().enumerate() {
            let h = schema.attr(j).hierarchy();
            let children = h.children(node);
            if children.len() < 2 {
                continue;
            }
            let groups = match group_by_child(table, h, j, node, children, &members, &rooted)? {
                Some(g) => g,
                None => continue,
            };
            let (left, right) = pack_two_bins(&groups);
            if left.len() < cfg.k || right.len() < cfg.k {
                continue;
            }
            if let Some(s) = sensitive {
                if distinct_of(s, &left) < cfg.l || distinct_of(s, &right) < cfg.l {
                    continue;
                }
            }
            let imbalance = left.len().abs_diff(right.len());
            let better = match &best {
                None => true,
                Some((bi, ..)) => imbalance < *bi,
            };
            if better {
                best = Some((imbalance, left, right));
            }
        }
        match best {
            Some((_, left, right)) => {
                queue.push(left);
                queue.push(right);
            }
            // No feasible split under the k/ℓ constraints: keep the
            // oversized shard instead of producing an invalid one.
            None => shards.push(members),
        }
    }
    for s in &mut shards {
        s.sort_unstable();
    }
    // Disjoint sorted shards: lexicographic order == order by first row.
    shards.sort();
    let shard_rows_max = shards.iter().map(Vec::len).max().unwrap_or(0);
    kanon_obs::count(kanon_obs::Counter::ShardsBuilt, shards.len() as u64);
    kanon_obs::count(kanon_obs::Counter::ShardRowsMax, shard_rows_max as u64);

    // Phase 2: run the clustering engine per shard against the GLOBAL
    // cost table (losses stay comparable; sub-clusterings stay globally
    // valid). Same dispatch shape as the best-k grid: serial when a
    // budget is armed (deterministic spend attribution), otherwise one
    // coarse task per shard with the threads split evenly inside.
    let run_one = |s: usize| -> Result<Budgeted<KAnonOutput>> {
        let members = &shards[s];
        let records = members
            .iter()
            .map(|&r| table.row(r as usize).clone())
            .collect();
        let sub = Table::new(Arc::clone(table.schema()), records)?;
        match sensitive {
            None => {
                let sub_cfg = AgglomerativeConfig::new(cfg.k)
                    .with_distance(cfg.distance)
                    .with_modified(cfg.modified);
                agglomerative_impl(&sub, costs, &sub_cfg)
            }
            Some(sv) => {
                let sub_sv: Vec<u32> = members.iter().map(|&r| sv[r as usize]).collect();
                let sub_cfg = LDiverseConfig {
                    k: cfg.k,
                    l: cfg.l,
                    distance: cfg.distance,
                };
                ldiversity_impl(&sub, costs, &sub_sv, &sub_cfg)
            }
        }
    };
    let results: Vec<Result<Budgeted<KAnonOutput>>> = if budget.is_some() {
        (0..shards.len()).map(run_one).collect()
    } else {
        let inner = (kanon_parallel::num_threads() / shards.len()).max(1);
        kanon_parallel::map_coarse(shards.len(), |s| {
            kanon_parallel::with_threads(inner, || run_one(s))
        })
    };
    let mut clusters: Vec<Vec<u32>> = Vec::new();
    for (s, result) in results.into_iter().enumerate() {
        let budgeted = result?;
        if let Budgeted::BudgetExhausted { budget, spent, .. } = &budgeted {
            exhausted.get_or_insert((*budget, *spent));
        }
        for local in budgeted.into_inner().clustering.clusters() {
            clusters.push(local.iter().map(|&i| shards[s][i as usize]).collect());
        }
    }

    // Phase 3a: free boundary merges — clusters from different shards
    // whose closures coincide generalize identically, so merging them is
    // loss-neutral and k/ℓ-preserving.
    let mut keyed: Vec<(Vec<kanon_core::hierarchy::NodeId>, Vec<u32>)> = clusters
        .into_iter()
        .map(|c| (ctx.closure_of(&c), c))
        .collect();
    keyed.sort_by(|a, b| (&a.0, a.1[0]).cmp(&(&b.0, b.1[0])));
    let mut boundary_repairs = 0usize;
    let mut clusters: Vec<Vec<u32>> = Vec::new();
    for (key, mut members) in keyed {
        match clusters.last_mut() {
            Some(last) if ctx.closure_of(last) == key => {
                last.append(&mut members);
                boundary_repairs += 1;
            }
            _ => clusters.push(members),
        }
    }
    for c in &mut clusters {
        c.sort_unstable();
    }

    // Phase 3b: defensive validity repair. Per-shard outputs are valid,
    // so this loop normally never fires — but if a cluster ever fails
    // global k (or ℓ), merge it into the neighbour with the cheapest
    // joined closure rather than emitting invalid output.
    loop {
        let violator = clusters.iter().position(|c| {
            c.len() < cfg.k || sensitive.is_some_and(|s| distinct_of(s, c) < cfg.l.min(c.len()))
        });
        let Some(v) = violator else { break };
        if clusters.len() < 2 {
            break; // one cluster holding everything: nothing to merge with
        }
        let v_nodes = ctx.closure_of(&clusters[v]);
        let mut best: Option<(f64, usize)> = None;
        for (i, c) in clusters.iter().enumerate() {
            if i == v {
                continue;
            }
            let joined = ctx.join_cost(&v_nodes, &ctx.closure_of(c));
            let better = match &best {
                None => true,
                Some((bc, _)) => joined.total_cmp(bc).is_lt(),
            };
            if better {
                best = Some((joined, i));
            }
        }
        let (_, target) = best.ok_or_else(|| {
            CoreError::InconsistentInput("boundary repair found no merge target".to_string())
        })?;
        let mut moved = clusters.swap_remove(v.max(target));
        let keep = v.min(target);
        clusters[keep].append(&mut moved);
        clusters[keep].sort_unstable();
        boundary_repairs += 1;
    }
    kanon_obs::count(kanon_obs::Counter::BoundaryRepairs, boundary_repairs as u64);

    clusters.sort_by_key(|c| c[0]);
    let clustering = Clustering::from_clusters(n, clusters)?;
    let gtable = clustering.to_generalized_table(table)?;
    let loss = costs.table_loss(&gtable);
    let output = ShardedOutput {
        out: KAnonOutput {
            clustering,
            table: gtable,
            loss,
        },
        stats: ShardStats {
            shards_built: shards.len(),
            shard_rows_max,
            boundary_repairs,
        },
    };
    Ok(match exhausted {
        None => Budgeted::Complete(output),
        Some((budget, spent)) => Budgeted::BudgetExhausted {
            best_so_far: output,
            budget,
            spent,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use kanon_core::record::Record;
    use kanon_core::schema::{SchemaBuilder, SharedSchema};
    use kanon_measures::EntropyMeasure;

    fn schema() -> SharedSchema {
        SchemaBuilder::new()
            .categorical_with_groups("c", ["a", "b", "c", "d"], &[&["a", "b"], &["c", "d"]])
            .numeric_with_intervals("age", 0, 19, &[5, 10])
            .build_shared()
            .unwrap()
    }

    fn table(n: u32) -> Table {
        let s = schema();
        let rows = (0..n)
            .map(|i| Record::from_raw([i % 4, (i * 7) % 20]))
            .collect();
        Table::new(s, rows).unwrap()
    }

    #[test]
    fn sharded_output_is_k_anonymous_and_sharded() {
        let t = table(240);
        let costs = NodeCostTable::compute(&t, &EntropyMeasure);
        let cfg = ShardConfig::new(3).with_shard_max(40);
        let out = sharded_k_anonymize(&t, &costs, &cfg).unwrap();
        assert!(out.out.clustering.min_cluster_size() >= 3);
        assert!(out.stats.shards_built > 1, "{:?}", out.stats);
        assert!(out.stats.shard_rows_max <= 40, "{:?}", out.stats);
        assert!(kanon_core::generalize::is_generalization_of(&t, &out.out.table).unwrap());
    }

    #[test]
    fn monolithic_when_table_fits_one_shard() {
        let t = table(60);
        let costs = NodeCostTable::compute(&t, &EntropyMeasure);
        let sharded = sharded_k_anonymize(&t, &costs, &ShardConfig::new(4)).unwrap();
        assert_eq!(sharded.stats.shards_built, 1);
        let mono =
            crate::agglomerative_k_anonymize(&t, &costs, &AgglomerativeConfig::new(4)).unwrap();
        // Same partition (the sharded path renumbers clusters by first
        // member) and bitwise-identical loss.
        let mut a: Vec<_> = sharded.out.clustering.clusters().to_vec();
        let mut b: Vec<_> = mono.clustering.clusters().to_vec();
        a.sort();
        b.sort();
        assert_eq!(a, b);
        assert_eq!(sharded.out.loss.to_bits(), mono.loss.to_bits());
    }

    #[test]
    fn deterministic_across_thread_counts() {
        let t = table(300);
        let costs = NodeCostTable::compute(&t, &EntropyMeasure);
        let cfg = ShardConfig::new(3).with_shard_max(50);
        let runs: Vec<_> = [1usize, 2, 8]
            .iter()
            .map(|&threads| {
                kanon_parallel::with_threads(threads, || {
                    sharded_k_anonymize(&t, &costs, &cfg).unwrap()
                })
            })
            .collect();
        assert_eq!(runs[0].out.clustering, runs[1].out.clustering);
        assert_eq!(runs[0].out.clustering, runs[2].out.clustering);
        assert_eq!(runs[0].out.loss.to_bits(), runs[1].out.loss.to_bits());
        assert_eq!(runs[0].out.loss.to_bits(), runs[2].out.loss.to_bits());
        assert_eq!(runs[0].stats, runs[2].stats);
    }

    #[test]
    fn ldiverse_shards_hold_global_l() {
        let t = table(240);
        let costs = NodeCostTable::compute(&t, &EntropyMeasure);
        let sensitive: Vec<u32> = (0..240u32).map(|i| i % 3).collect();
        let cfg = ShardConfig::new(3).with_l(2).with_shard_max(40);
        let out = sharded_l_diverse_k_anonymize(&t, &costs, &sensitive, &cfg).unwrap();
        assert!(out.out.clustering.min_cluster_size() >= 3);
        for c in out.out.clustering.clusters() {
            assert!(distinct_of(&sensitive, c) >= 2, "{c:?}");
        }
        assert!(out.stats.shards_built > 1);
    }

    #[test]
    fn sensitive_length_mismatch_is_a_typed_error() {
        let t = table(60);
        let costs = NodeCostTable::compute(&t, &EntropyMeasure);
        let cfg = ShardConfig::new(3).with_l(2);
        let err = sharded_l_diverse_k_anonymize(&t, &costs, &[0, 1], &cfg).unwrap_err();
        assert!(matches!(err, CoreError::RowCountMismatch { .. }), "{err}");
    }

    #[test]
    fn budget_exhaustion_degrades_to_valid_output() {
        let t = table(240);
        let costs = NodeCostTable::compute(&t, &EntropyMeasure);
        let cfg = ShardConfig::new(3).with_shard_max(40);
        let out = kanon_obs::with_work_budget(1, || {
            crate::try_sharded_k_anonymize(&t, &costs, &cfg).unwrap()
        });
        assert!(out.is_exhausted());
        assert!(out.inner().out.clustering.min_cluster_size() >= 3);
    }

    #[test]
    fn rooted_cells_flow_into_the_partitioner() {
        // Root a cell in attribute 0 and shard aggressively: the
        // partitioner must treat it as unsplittable there, not panic.
        let t = table(240);
        let costs = NodeCostTable::compute(&t, &EntropyMeasure);
        let cfg = ShardConfig::new(3)
            .with_shard_max(40)
            .with_rooted_cells(vec![(0, 0), (17, 0)]);
        let out = sharded_k_anonymize(&t, &costs, &cfg).unwrap();
        assert!(out.out.clustering.min_cluster_size() >= 3);
        let err = sharded_k_anonymize(
            &t,
            &costs,
            &ShardConfig::new(3).with_rooted_cells(vec![(999, 0)]),
        )
        .unwrap_err();
        assert!(matches!(err, CoreError::InconsistentInput(_)), "{err}");
    }
}
