//! **Samarati's algorithm** (TKDE 2001) — the original k-anonymization
//! algorithm, cited by the paper as reference \[18\]: full-domain
//! generalization plus a budget of at most `max_sup` *suppressed*
//! records. Included as the historical baseline (experiment E-A8).
//!
//! Samarati observed that, with a suppression budget, the set of feasible
//! lattice *heights* is upward-closed: if some node at height `h` can be
//! made k-anonymous by suppressing ≤ `max_sup` outlier records, so can
//! some node at every height above. Her algorithm binary-searches the
//! minimal feasible height, then returns a minimal-loss feasible node at
//! that height.
//!
//! Suppressed records are published fully generalized (all attributes at
//! the hierarchy root) — the conventional representation of record
//! suppression in this model.

use crate::agglomerative::KAnonOutput;
use kanon_core::cluster::Clustering;
use kanon_core::error::{CoreError, Result};
use kanon_core::hierarchy::NodeId;
use kanon_core::table::Table;
use kanon_measures::NodeCostTable;
// BTreeMap keyed by recoded tuples: `evaluate` accumulates the float loss
// while iterating the classes, so the iteration order must be a function
// of the data alone (float addition is not associative — a HashMap here
// made the published loss hasher-seed dependent in the last ulp).
use std::collections::BTreeMap;

/// Output of Samarati's algorithm.
#[derive(Debug, Clone)]
pub struct SamaratiOutput {
    /// Clustering + generalized table + loss.
    pub output: KAnonOutput,
    /// The winning lattice node (per-attribute levels).
    pub levels: Vec<u8>,
    /// Rows that were suppressed (published as all-root records).
    pub suppressed: Vec<u32>,
    /// The minimal feasible lattice height found by the binary search.
    pub height: u32,
}

/// Runs Samarati's binary search with a suppression budget.
///
/// Panicking wrapper over [`crate::try_samarati_k_anonymize`]: domain
/// failures come back as `CoreError`; injected faults and organic panics
/// re-raise as a `KanonError` panic payload.
pub fn samarati_k_anonymize(
    table: &Table,
    costs: &NodeCostTable,
    k: usize,
    max_sup: usize,
) -> Result<SamaratiOutput> {
    crate::fallible::unwrap_or_repanic(crate::try_samarati_k_anonymize(table, costs, k, max_sup))
}

/// Samarati height binary search (the implementation behind the
/// panicking wrapper and its `try_` twin).
pub(crate) fn samarati_impl(
    table: &Table,
    costs: &NodeCostTable,
    k: usize,
    max_sup: usize,
) -> Result<SamaratiOutput> {
    let n = table.num_rows();
    if k == 0 || k > n {
        return Err(CoreError::InvalidK { k, n });
    }
    let schema = table.schema();
    let r = schema.num_attrs();

    let max_level: Vec<u8> = (0..r)
        .map(|j| {
            let h = schema.attr(j).hierarchy();
            (0..h.domain_size() as u32)
                .map(|v| h.depth(h.leaf(kanon_core::ValueId(v))) as u8)
                .max()
                .unwrap_or(0)
        })
        .collect();
    let recode: Vec<Vec<Vec<NodeId>>> = (0..r)
        .map(|j| {
            let h = schema.attr(j).hierarchy();
            (0..=max_level[j])
                .map(|l| {
                    (0..h.domain_size() as u32)
                        .map(|v| {
                            let mut cur = h.leaf(kanon_core::ValueId(v));
                            for _ in 0..l {
                                match h.parent(cur) {
                                    Some(p) => cur = p,
                                    None => break,
                                }
                            }
                            cur
                        })
                        .collect()
                })
                .collect()
        })
        .collect();

    // All lattice nodes, grouped by height (sum of levels).
    let mut by_height: Vec<Vec<Vec<u8>>> = Vec::new();
    let mut cur = vec![0u8; r];
    loop {
        let h: u32 = cur.iter().map(|&l| l as u32).sum();
        if by_height.len() <= h as usize {
            by_height.resize(h as usize + 1, Vec::new());
        }
        by_height[h as usize].push(cur.clone());
        let mut j = 0;
        loop {
            if j == r {
                break;
            }
            if cur[j] < max_level[j] {
                cur[j] += 1;
                break;
            }
            cur[j] = 0;
            j += 1;
        }
        if j == r {
            break;
        }
    }
    let max_height = by_height.len() as u32 - 1;

    // Feasibility of a node: number of records in classes smaller than k
    // must be ≤ max_sup. Returns (feasible, suppressed rows, loss).
    let evaluate = |levels: &[u8]| -> (bool, Vec<u32>, f64) {
        let mut classes: BTreeMap<Vec<NodeId>, Vec<u32>> = BTreeMap::new();
        let mut recoded = vec![NodeId(0); r];
        for (i, rec) in table.rows().iter().enumerate() {
            for j in 0..r {
                recoded[j] = recode[j][levels[j] as usize][rec.get(j).index()];
            }
            classes.entry(recoded.clone()).or_default().push(i as u32);
        }
        let mut suppressed = Vec::new();
        let mut sum = 0.0;
        for (tuple, rows) in &classes {
            if rows.len() < k {
                suppressed.extend_from_slice(rows);
            } else {
                for (j, &node) in tuple.iter().enumerate() {
                    sum += costs.entry_cost(j, node) * rows.len() as f64;
                }
            }
        }
        // Suppressed rows are published all-root.
        for j in 0..r {
            let root = schema.attr(j).hierarchy().root();
            sum += costs.entry_cost(j, root) * suppressed.len() as f64;
        }
        let loss = sum / (n as f64 * r as f64);
        suppressed.sort_unstable();
        (suppressed.len() <= max_sup, suppressed, loss)
    };

    let height_feasible =
        |h: u32| -> bool { by_height[h as usize].iter().any(|node| evaluate(node).0) };

    // Binary search for the minimal feasible height. (The all-root node at
    // max height is always feasible, so the search is well-defined;
    // feasibility is monotone in height by Samarati's observation.)
    let (mut lo, mut hi) = (0u32, max_height);
    while lo < hi {
        let mid = (lo + hi) / 2;
        if height_feasible(mid) {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }

    // Minimal-loss feasible node at that height.
    let mut best: Option<(f64, Vec<u8>, Vec<u32>)> = None;
    for node in &by_height[lo as usize] {
        let (ok, suppressed, loss) = evaluate(node);
        if ok {
            let better = best.as_ref().is_none_or(|(bl, ..)| loss < *bl);
            if better {
                best = Some((loss, node.clone(), suppressed));
            }
        }
    }
    // kanon-lint: allow(L006) the binary search maintains a feasible height
    let (_, levels, suppressed) = best.expect("binary search returned a feasible height");

    // Materialize: suppressed rows form their own all-root "class"; note
    // that with fewer than k suppressed rows the published table is only
    // k-anonymous *outside* the suppressed records, which is the accepted
    // semantics of record suppression (those individuals are removed from
    // the linkage game entirely).
    let sup_set: std::collections::BTreeSet<u32> = suppressed.iter().copied().collect();
    let mut class_of: BTreeMap<Vec<NodeId>, u32> = BTreeMap::new();
    let mut assignment = Vec::with_capacity(n);
    let all_root: Vec<NodeId> = schema.suppressed_nodes();
    let mut recoded = vec![NodeId(0); r];
    let mut grows = Vec::with_capacity(n);
    for (i, rec) in table.rows().iter().enumerate() {
        let tuple = if sup_set.contains(&(i as u32)) {
            all_root.clone()
        } else {
            for j in 0..r {
                recoded[j] = recode[j][levels[j] as usize][rec.get(j).index()];
            }
            recoded.clone()
        };
        let next = class_of.len() as u32;
        let id = *class_of.entry(tuple.clone()).or_insert(next);
        assignment.push(id);
        grows.push(kanon_core::GeneralizedRecord::new(tuple));
    }
    let clustering = Clustering::from_assignment(assignment)?;
    // Publish the recoded tuples directly: suppressed rows must appear
    // fully generalized, NOT as the closure of the suppressed class
    // (which could be narrower and leak).
    let gtable =
        kanon_core::GeneralizedTable::new_unchecked(std::sync::Arc::clone(table.schema()), grows);
    let loss = costs.table_loss(&gtable);
    Ok(SamaratiOutput {
        output: KAnonOutput {
            clustering,
            table: gtable,
            loss,
        },
        levels,
        suppressed,
        height: lo,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fulldomain::fulldomain_k_anonymize;
    use kanon_core::record::Record;
    use kanon_core::schema::SchemaBuilder;
    use kanon_measures::LmMeasure;
    use std::sync::Arc;

    fn table() -> Table {
        let s = SchemaBuilder::new()
            .categorical_with_groups("c", ["a", "b", "c", "d"], &[&["a", "b"], &["c", "d"]])
            .numeric_with_intervals("x", 0, 7, &[2, 4])
            .build_shared()
            .unwrap();
        let mut rows = Vec::new();
        for i in 0..15u32 {
            rows.push(Record::from_raw([i % 4, (i * 3) % 8]));
        }
        // One outlier that forces either heavy generalization or a
        // suppression.
        rows.push(Record::from_raw([3, 7]));
        Table::new(Arc::clone(&s), rows).unwrap()
    }

    #[test]
    fn zero_budget_matches_fulldomain_family() {
        // With max_sup = 0, Samarati solves the same problem as the
        // exhaustive full-domain search, restricted to minimal height; the
        // full-domain optimum can only be at least as good.
        let t = table();
        let costs = NodeCostTable::compute(&t, &LmMeasure);
        let sam = samarati_k_anonymize(&t, &costs, 2, 0).unwrap();
        let full = fulldomain_k_anonymize(&t, &costs, 2).unwrap();
        assert!(sam.suppressed.is_empty());
        assert!(full.output.loss <= sam.output.loss + 1e-9);
        // And the Samarati output really is 2-anonymous.
        assert!(sam.output.clustering.min_cluster_size() >= 2);
    }

    #[test]
    fn suppression_budget_lowers_height_and_loss() {
        let t = table();
        let costs = NodeCostTable::compute(&t, &LmMeasure);
        let strict = samarati_k_anonymize(&t, &costs, 3, 0).unwrap();
        let relaxed = samarati_k_anonymize(&t, &costs, 3, 2).unwrap();
        // A suppression budget can only lower (or keep) the minimal
        // feasible height; the loss usually follows but is not guaranteed
        // to (suppressed records are published fully generalized).
        assert!(relaxed.height <= strict.height);
        assert!(relaxed.suppressed.len() <= 2);
    }

    #[test]
    fn published_classes_respect_k_outside_suppressions() {
        let t = table();
        let costs = NodeCostTable::compute(&t, &LmMeasure);
        let out = samarati_k_anonymize(&t, &costs, 3, 2).unwrap();
        let sup: std::collections::BTreeSet<u32> = out.suppressed.iter().copied().collect();
        for cluster in out.output.clustering.clusters() {
            let unsuppressed = cluster.iter().filter(|r| !sup.contains(r)).count();
            // Either an all-suppressed class, or a k-sized class (possibly
            // plus suppressed rows merged into the root class).
            assert!(
                unsuppressed == 0 || unsuppressed >= 3 || cluster.iter().all(|r| sup.contains(r)),
                "cluster {cluster:?} has {unsuppressed} unsuppressed rows"
            );
        }
    }

    #[test]
    fn invalid_k_rejected() {
        let t = table();
        let costs = NodeCostTable::compute(&t, &LmMeasure);
        assert!(samarati_k_anonymize(&t, &costs, 0, 0).is_err());
        assert!(samarati_k_anonymize(&t, &costs, 17, 0).is_err());
    }

    #[test]
    fn binary_search_height_is_minimal() {
        let t = table();
        let costs = NodeCostTable::compute(&t, &LmMeasure);
        let out = samarati_k_anonymize(&t, &costs, 2, 0).unwrap();
        // No node strictly below the returned height may be feasible —
        // re-verify by checking the returned node's own height.
        let h: u32 = out.levels.iter().map(|&l| l as u32).sum();
        assert_eq!(h, out.height);
    }
}
