//! The **forest algorithm** — the paper's comparison baseline (Sec. V,
//! Sec. VI), re-implemented from Aggarwal et al., *Anonymizing Tables*
//! (ICDT 2005) / *Approximation Algorithms for k-Anonymity* (JPT 2005).
//! It guarantees a 3(k−1)-approximation of optimal k-anonymity.
//!
//! Phase 1 builds a spanning forest in which every tree has at least `k`
//! vertices: while some component is smaller than `k`, it is joined to its
//! nearest other component via the minimum-weight outgoing edge (edge
//! weights are pairwise record costs `d({R_u, R_v})` under the active
//! measure, so the baseline competes under the same cost model as our
//! algorithms). We batch these merges Borůvka-style — each round scans all
//! pairs once and merges every small component along its best edge — which
//! produces the same forest family in O(log k) rounds of O(n²) work.
//!
//! Phase 2 splits every tree with more than `3k − 3` vertices into parts
//! of size in `[k, 3k−3]`: root the tree, find a deepest vertex `v` whose
//! subtree has ≥ k vertices (so each child subtree has ≤ k−1), and cut
//! either a group of `v`'s child subtrees totalling in `[k, 2k−2]`
//! (keeping `v`, so the remainder stays connected) or, when the children
//! total exactly `k−1`, the whole subtree of `v` (size exactly `k`). The
//! remainder keeps ≥ k vertices, so induction applies.
//!
//! The resulting components (≥ k vertices each) become clusters; records
//! are replaced by cluster closures as usual.

use crate::agglomerative::KAnonOutput;
use crate::cost::CostContext;
use kanon_core::cluster::Clustering;
use kanon_core::error::{CoreError, Result};
use kanon_core::table::Table;
use kanon_measures::NodeCostTable;

/// Union-find with path compression and union by size.
struct UnionFind {
    parent: Vec<u32>,
    size: Vec<u32>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n as u32).collect(),
            size: vec![1; n],
        }
    }

    fn find(&mut self, x: u32) -> u32 {
        let mut root = x;
        while self.parent[root as usize] != root {
            root = self.parent[root as usize];
        }
        let mut cur = x;
        while self.parent[cur as usize] != root {
            let next = self.parent[cur as usize];
            self.parent[cur as usize] = root;
            cur = next;
        }
        root
    }

    fn union(&mut self, a: u32, b: u32) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        let (big, small) = if self.size[ra as usize] >= self.size[rb as usize] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[small as usize] = big;
        self.size[big as usize] += self.size[small as usize];
        true
    }

    fn component_size(&mut self, x: u32) -> u32 {
        let r = self.find(x);
        self.size[r as usize]
    }
}

/// Runs the forest baseline and returns the clustering, generalized table
/// and loss.
///
/// Panicking wrapper over [`crate::try_forest_k_anonymize`]: domain
/// failures come back as `CoreError`; isolated worker panics and injected
/// faults re-raise as a `KanonError` panic payload. A budget-exhausted
/// run returns its valid best-effort result silently — use the `try_`
/// form to observe the `BudgetExhausted` marker.
pub fn forest_k_anonymize(table: &Table, costs: &NodeCostTable, k: usize) -> Result<KAnonOutput> {
    match crate::try_forest_k_anonymize(table, costs, k) {
        Ok(out) => Ok(out.into_inner()),
        Err(kanon_core::KanonError::Core(e)) => Err(e),
        Err(other) => std::panic::panic_any(other),
    }
}

/// Forest-baseline implementation with budget-aware graceful degradation.
pub(crate) fn forest_impl(
    table: &Table,
    costs: &NodeCostTable,
    k: usize,
) -> Result<crate::Budgeted<KAnonOutput>> {
    let n = table.num_rows();
    if k == 0 || k > n {
        return Err(CoreError::InvalidK { k, n });
    }
    let _span = kanon_obs::span("forest");
    let ctx = CostContext::new(table, costs);

    if k == 1 {
        let clustering = Clustering::from_assignment((0..n as u32).collect())?;
        let gtable = clustering.to_generalized_table(table)?;
        let loss = costs.table_loss(&gtable);
        return Ok(crate::Budgeted::Complete(KAnonOutput {
            clustering,
            table: gtable,
            loss,
        }));
    }

    // Budget-aware runs need a collector for `spent_work` to be
    // meaningful; install a private one when the caller has none.
    let budget = kanon_obs::work_budget();
    let _budget_obs = match (budget, kanon_obs::current()) {
        (Some(_), None) => Some(kanon_obs::Collector::new().install()),
        _ => None,
    };

    // ---------------- Phase 1: grow a forest with trees ≥ k ----------------
    let mut uf = UnionFind::new(n);
    let mut tree_edges: Vec<(u32, u32)> = Vec::with_capacity(n - 1);
    let mut exhausted: Option<(u64, u64)> = None;

    loop {
        // Which components are still small?
        let mut small_any = false;
        for u in 0..n as u32 {
            if uf.component_size(u) < k as u32 {
                small_any = true;
                break;
            }
        }
        if !small_any {
            break;
        }
        kanon_fault::fail_point!("algos/forest/round");
        if let Some(limit) = budget {
            let spent = kanon_obs::spent_work();
            if spent >= limit {
                exhausted = Some((limit, spent));
                break;
            }
        }
        kanon_obs::count(kanon_obs::Counter::ForestRounds, 1);
        // Snapshot component roots and smallness once per round so the
        // pair scan below is a pure read (find() path-compresses).
        let mut root_of = vec![0u32; n];
        for u in 0..n as u32 {
            root_of[u as usize] = uf.find(u);
        }
        let small_root: Vec<bool> = (0..n).map(|x| uf.size[x] < k as u32).collect();
        // Best outgoing edge per small component root:
        // best[root] = (weight, u, v). The `better` predicate is a strict
        // total order on (weight, (u, v)), so per-root argmins merge
        // identically in any order — which lets the O(n²) pair-cost scan
        // run as a parallel chunked fold with per-chunk best tables.
        let better = |w: f64, u: u32, v: u32, e: &Option<(f64, u32, u32)>| -> bool {
            match e {
                None => true,
                Some((bw, bu, bv)) => match w.total_cmp(bw) {
                    std::cmp::Ordering::Less => true,
                    std::cmp::Ordering::Equal => (u, v) < (*bu, *bv),
                    std::cmp::Ordering::Greater => false,
                },
            }
        };
        let scan_row = |acc: &mut Vec<Option<(f64, u32, u32)>>, u: usize| {
            let ru = root_of[u];
            let small_u = small_root[ru as usize];
            for (v, &rv) in root_of.iter().enumerate().skip(u + 1) {
                if ru == rv {
                    continue;
                }
                let small_v = small_root[rv as usize];
                if !small_u && !small_v {
                    continue;
                }
                let w = ctx.pair_cost(u, v);
                for root in [ru, rv] {
                    if !small_root[root as usize] {
                        continue;
                    }
                    let e = &mut acc[root as usize];
                    if better(w, u as u32, v as u32, e) {
                        *e = Some((w, u as u32, v as u32));
                    }
                }
            }
        };
        // Row u costs O(n − u) pair evaluations; pairing row s with row
        // n−1−s gives every fold index the same O(n) work, so contiguous
        // chunks stay balanced across workers.
        let half = n.div_ceil(2);
        let best: Vec<Option<(f64, u32, u32)>> = kanon_parallel::fold_chunks(
            half,
            || vec![None; n],
            |acc, s| {
                scan_row(acc, s);
                let mirror = n - 1 - s;
                if mirror != s {
                    scan_row(acc, mirror);
                }
            },
            |mut a, b| {
                for (ea, eb) in a.iter_mut().zip(b) {
                    if let Some((w, u, v)) = eb {
                        if better(w, u, v, ea) {
                            *ea = Some((w, u, v));
                        }
                    }
                }
                a
            },
        );
        // Merge every small component along its chosen edge.
        let mut merged_any = false;
        for entry in best.iter().take(n) {
            if let Some((_, u, v)) = *entry {
                if uf.union(u, v) {
                    tree_edges.push((u, v));
                    merged_any = true;
                }
            }
        }
        debug_assert!(merged_any, "every small component has an outgoing edge");
        if !merged_any {
            break; // defensive: avoid an infinite loop on degenerate input
        }
    }

    // Graceful degradation: the budget tripped with small components
    // outstanding. Skip the remaining O(n²) best-edge scans and chain
    // each small component to the first vertex outside it (smallest
    // vertex first — deterministic), so every tree reaches ≥ k vertices
    // at O(n) cost per link. Edge weights are ignored here, trading
    // generalization quality for bounded work; Phase 2 still yields a
    // valid k-anonymous clustering.
    if exhausted.is_some() {
        loop {
            let mut small_u = None;
            for u in 0..n as u32 {
                if uf.component_size(u) < k as u32 {
                    small_u = Some(u);
                    break;
                }
            }
            let Some(u) = small_u else { break };
            let ru = uf.find(u);
            let mut other = None;
            for v in 0..n as u32 {
                if uf.find(v) != ru {
                    other = Some(v);
                    break;
                }
            }
            // A lone component always has n ≥ k vertices, so `other`
            // exists whenever a small component does; break defensively.
            let Some(v) = other else { break };
            uf.union(u, v);
            tree_edges.push((u.min(v), u.max(v)));
        }
    }

    // ---------------- Phase 2: split oversized trees ----------------
    // Group vertices and adjacency per component.
    let mut comp_of = vec![0u32; n];
    for u in 0..n as u32 {
        comp_of[u as usize] = uf.find(u);
    }
    let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n];
    for &(u, v) in &tree_edges {
        adj[u as usize].push(v);
        adj[v as usize].push(u);
    }
    // BTreeMap: components are drained in sorted root order, so cluster
    // numbering is a pure function of the input (L001 discipline).
    let mut comp_members: std::collections::BTreeMap<u32, Vec<u32>> =
        std::collections::BTreeMap::new();
    for u in 0..n as u32 {
        comp_members.entry(comp_of[u as usize]).or_default().push(u);
    }

    let max_size = 3 * k - 3;
    let mut clusters: Vec<Vec<u32>> = Vec::new();
    for (_, members) in comp_members {
        split_tree(members, &adj, k, max_size, &mut clusters);
    }

    let clustering = Clustering::from_clusters(n, clusters)?;
    let gtable = clustering.to_generalized_table(table)?;
    let loss = costs.table_loss(&gtable);
    let output = KAnonOutput {
        clustering,
        table: gtable,
        loss,
    };
    Ok(match exhausted {
        None => crate::Budgeted::Complete(output),
        Some((budget, spent)) => crate::Budgeted::BudgetExhausted {
            best_so_far: output,
            budget,
            spent,
        },
    })
}

/// Recursively splits a tree (given by its member list and the global
/// adjacency) into clusters of size in `[k, max_size]`.
fn split_tree(
    mut members: Vec<u32>,
    adj: &[Vec<u32>],
    k: usize,
    max_size: usize,
    out: &mut Vec<Vec<u32>>,
) {
    loop {
        if members.len() <= max_size {
            debug_assert!(members.len() >= k);
            out.push(members);
            return;
        }
        // Root the tree at its first member and compute parents, orders
        // and subtree sizes restricted to `members`. Ordered maps keep the
        // whole splitter iteration-order free (L001): the DFS `order`
        // vector drives every traversal, the maps are lookups only.
        let in_tree: std::collections::BTreeSet<u32> = members.iter().copied().collect();
        let root = members[0];
        let mut parent: std::collections::BTreeMap<u32, u32> = std::collections::BTreeMap::new();
        let mut order: Vec<u32> = Vec::with_capacity(members.len());
        let mut depth: std::collections::BTreeMap<u32, u32> = std::collections::BTreeMap::new();
        parent.insert(root, root);
        depth.insert(root, 0);
        let mut stack = vec![root];
        while let Some(u) = stack.pop() {
            order.push(u);
            for &v in &adj[u as usize] {
                if in_tree.contains(&v) && !parent.contains_key(&v) {
                    parent.insert(v, u);
                    depth.insert(v, depth[&u] + 1);
                    stack.push(v);
                }
            }
        }
        debug_assert_eq!(order.len(), members.len(), "component must be a tree");
        let mut subtree: std::collections::BTreeMap<u32, usize> =
            members.iter().map(|&u| (u, 1usize)).collect();
        for &u in order.iter().rev() {
            if u != root {
                let p = parent[&u];
                let s = subtree[&u];
                // kanon-lint: allow(L006) the parent map covers every non-root vertex
                *subtree.get_mut(&p).unwrap() += s;
            }
        }
        // Deepest vertex whose subtree has ≥ k vertices (ties: later in
        // DFS order, deterministic).
        let v = *order
            .iter()
            .filter(|&&u| subtree[&u] >= k)
            .max_by_key(|&&u| (depth[&u], u))
            // kanon-lint: allow(L006) the root subtree holds all n >= k vertices
            .expect("root subtree has ≥ k vertices");
        // Children of v and their subtree sizes (each ≤ k−1 by choice of v).
        let children: Vec<u32> = adj[v as usize]
            .iter()
            .copied()
            .filter(|&c| in_tree.contains(&c) && parent.get(&c) == Some(&v))
            .collect();
        let child_total: usize = children.iter().map(|c| subtree[c]).sum();
        debug_assert_eq!(child_total + 1, subtree[&v]);

        // Collect vertex sets of child subtrees on demand.
        let collect_subtree = |start: u32| -> Vec<u32> {
            let mut acc = Vec::new();
            let mut st = vec![start];
            while let Some(u) = st.pop() {
                acc.push(u);
                for &w in &adj[u as usize] {
                    if in_tree.contains(&w) && parent.get(&w) == Some(&u) {
                        st.push(w);
                    }
                }
            }
            acc
        };

        let cut: Vec<u32> = if child_total >= k {
            // Greedily group child subtrees until ≥ k (total ≤ 2k−2).
            let mut group = Vec::new();
            for &c in &children {
                group.extend(collect_subtree(c));
                if group.len() >= k {
                    break;
                }
            }
            debug_assert!(group.len() >= k && group.len() <= 2 * k - 2);
            group
        } else {
            // subtree(v) has exactly k vertices: cut it whole.
            let sub = collect_subtree(v);
            debug_assert_eq!(sub.len(), k);
            sub
        };
        let cut_set: std::collections::BTreeSet<u32> = cut.iter().copied().collect();
        members.retain(|u| !cut_set.contains(u));
        debug_assert!(members.len() >= k, "remainder must stay ≥ k");
        out.push(cut);
        // Loop continues with the remainder.
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agglomerative::{agglomerative_k_anonymize, AgglomerativeConfig};
    use kanon_core::record::Record;
    use kanon_core::schema::{SchemaBuilder, SharedSchema};
    use kanon_measures::{EntropyMeasure, LmMeasure};
    use std::sync::Arc;

    fn schema() -> SharedSchema {
        SchemaBuilder::new()
            .categorical_with_groups(
                "c",
                ["a", "b", "c", "d", "e", "f", "g", "h"],
                &[
                    &["a", "b"],
                    &["c", "d"],
                    &["e", "f"],
                    &["g", "h"],
                    &["a", "b", "c", "d"],
                    &["e", "f", "g", "h"],
                ],
            )
            .build_shared()
            .unwrap()
    }

    fn table(s: &SharedSchema, copies: usize) -> Table {
        let mut rows = Vec::new();
        for _ in 0..copies {
            for v in 0..8 {
                rows.push(Record::from_raw([v]));
            }
        }
        Table::new(Arc::clone(s), rows).unwrap()
    }

    #[test]
    fn forest_output_is_k_anonymous_with_size_bound() {
        let s = schema();
        let t = table(&s, 3); // 24 records
        let costs = NodeCostTable::compute(&t, &EntropyMeasure);
        for k in [2, 3, 4, 5] {
            let out = forest_k_anonymize(&t, &costs, k).unwrap();
            assert!(out.clustering.min_cluster_size() >= k, "k={k}");
            assert!(
                out.clustering.max_cluster_size() <= 3 * k - 3,
                "k={k}: max cluster {} > 3k−3 = {}",
                out.clustering.max_cluster_size(),
                3 * k - 3
            );
        }
    }

    #[test]
    fn forest_handles_k_one_and_extremes() {
        let s = schema();
        let t = table(&s, 1);
        let costs = NodeCostTable::compute(&t, &LmMeasure);
        let out = forest_k_anonymize(&t, &costs, 1).unwrap();
        assert_eq!(out.loss, 0.0);
        assert!(forest_k_anonymize(&t, &costs, 0).is_err());
        assert!(forest_k_anonymize(&t, &costs, 9).is_err());
    }

    #[test]
    fn forest_with_k_equal_n_has_single_cluster() {
        // 3k−3 ≥ n must hold for k = n ⇒ single cluster allowed only if
        // n ≤ 3n−3, true for n ≥ 2; the splitter must not split it.
        let s = schema();
        let t = table(&s, 1); // n = 8
        let costs = NodeCostTable::compute(&t, &LmMeasure);
        let out = forest_k_anonymize(&t, &costs, 8).unwrap();
        assert_eq!(out.clustering.num_clusters(), 1);
    }

    #[test]
    fn agglomerative_matches_forest_on_clean_pairs() {
        // On data whose duplicates exactly fill clusters of size k, both
        // the agglomerative algorithm and the forest baseline find the
        // perfect (zero-extra-loss) clustering. (The paper's 20–50 %
        // aggregate advantage of the agglomerative algorithms is a
        // statistical statement over realistic data — exercised by the
        // bench harness, not assertable pointwise.)
        let s = schema();
        let t = table(&s, 2); // two copies of each value
        let costs = NodeCostTable::compute(&t, &EntropyMeasure);
        let forest = forest_k_anonymize(&t, &costs, 2).unwrap();
        let agg = agglomerative_k_anonymize(&t, &costs, &AgglomerativeConfig::new(2)).unwrap();
        assert_eq!(agg.loss, 0.0);
        assert_eq!(forest.loss, 0.0);
    }

    #[test]
    fn forest_is_deterministic() {
        let s = schema();
        let t = table(&s, 2);
        let costs = NodeCostTable::compute(&t, &EntropyMeasure);
        let a = forest_k_anonymize(&t, &costs, 3).unwrap();
        let b = forest_k_anonymize(&t, &costs, 3).unwrap();
        assert_eq!(a.clustering, b.clustering);
    }

    #[test]
    fn forest_output_is_pinned() {
        // Golden output: the exact cluster family, not just re-run
        // equality. Re-running in-process cannot catch platform- or
        // hasher-seed-dependent iteration orders; a pinned expectation
        // can. If an intentional algorithm change breaks this, re-pin by
        // printing `out.clustering.clusters()`.
        let s = schema();
        let t = table(&s, 2); // rows 0..8 and 8..16, value v = row % 8
        let costs = NodeCostTable::compute(&t, &EntropyMeasure);
        let out = forest_k_anonymize(&t, &costs, 2).unwrap();
        let mut clusters: Vec<Vec<u32>> = out
            .clustering
            .clusters()
            .iter()
            .map(|c| {
                let mut c = c.clone();
                c.sort_unstable();
                c
            })
            .collect();
        clusters.sort();
        // Duplicate pairs (v, v+8) share a value, so the forest joins
        // exactly those zero-cost edges.
        let expected: Vec<Vec<u32>> = (0..8).map(|v| vec![v, v + 8]).collect();
        assert_eq!(clusters, expected);
        assert_eq!(out.loss, 0.0);
    }

    #[test]
    fn split_tree_star_shape() {
        // A star with 10 leaves (root 0) and k = 3: the splitter must cut
        // child groups, never stranding the centre.
        let n = 11;
        let mut adj = vec![Vec::new(); n];
        for leaf in 1..n as u32 {
            adj[0].push(leaf);
            adj[leaf as usize].push(0);
        }
        let mut out = Vec::new();
        split_tree((0..n as u32).collect(), &adj, 3, 6, &mut out);
        let total: usize = out.iter().map(Vec::len).sum();
        assert_eq!(total, n);
        for c in &out {
            assert!(c.len() >= 3 && c.len() <= 6, "bad cluster size {}", c.len());
        }
    }

    #[test]
    fn split_tree_path_shape() {
        // A path of 20 vertices, k = 4, max 9.
        let n = 20;
        let mut adj = vec![Vec::new(); n];
        for u in 0..n - 1 {
            adj[u].push(u as u32 + 1);
            adj[u + 1].push(u as u32);
        }
        let mut out = Vec::new();
        split_tree((0..n as u32).collect(), &adj, 4, 9, &mut out);
        let total: usize = out.iter().map(Vec::len).sum();
        assert_eq!(total, n);
        for c in &out {
            assert!(c.len() >= 4 && c.len() <= 9);
        }
    }
}
