//! Front-door compositions: the end-to-end anonymizers a user calls.
//!
//! * [`kk_anonymize`] — Sec. V-B: a (k,1)-anonymizer (Algorithm 3 or 4)
//!   followed by the (1,k)-anonymizer (Algorithm 5) ⇒ (k,k)-anonymity.
//! * [`global_1k_anonymize`] — Sec. V-C: the (k,k) pipeline followed by
//!   Algorithm 6 ⇒ global (1,k)-anonymity.
//! * [`best_k_anonymize`] — the paper's "best k-anon" row of Table I:
//!   the agglomerative algorithm over a set of distance functions (and
//!   optionally the modified variant), keeping the cheapest output.
//! * [`crate::shard::sharded_k_anonymize`] and
//!   [`crate::shard::sharded_l_diverse_k_anonymize`] — the large-n
//!   front door (DESIGN.md §5f): shard-and-conquer around the same
//!   clustering engine, for tables past its quadratic wall.

use crate::agglomerative::{agglomerative_impl, AgglomerativeConfig, KAnonOutput};
use crate::distance::ClusterDistance;
use crate::fallible::{unwrap_or_repanic, Budgeted};
use crate::global_one_k::{global_1k_from_kk, GlobalOutput};
use crate::k1::{k1_expansion, k1_nearest_neighbors, GenOutput};
use crate::one_k::one_k_impl;
use kanon_core::error::Result;
use kanon_core::table::Table;
use kanon_measures::NodeCostTable;

/// Which (k,1)-anonymizer seeds the (k,k) pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum K1Method {
    /// Algorithm 3: k−1 nearest neighbours ((k−1)-approximation).
    NearestNeighbors,
    /// Algorithm 4: greedy expansion (better in practice — the paper's
    /// and our default).
    #[default]
    Expansion,
}

impl K1Method {
    /// Short display name.
    pub fn name(&self) -> &'static str {
        match self {
            K1Method::NearestNeighbors => "Alg3+5",
            K1Method::Expansion => "Alg4+5",
        }
    }
}

/// Configuration of the (k,k) pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KkConfig {
    /// The anonymity parameter.
    pub k: usize,
    /// The (k,1) stage.
    pub method: K1Method,
}

impl KkConfig {
    /// Defaults to the expansion method (Algorithm 4), which the paper
    /// found uniformly better.
    pub fn new(k: usize) -> Self {
        KkConfig {
            k,
            method: K1Method::default(),
        }
    }

    /// Selects the (k,1) stage.
    pub fn with_method(mut self, m: K1Method) -> Self {
        self.method = m;
        self
    }
}

/// Configuration of the global (1,k) pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GlobalConfig {
    /// The anonymity parameter.
    pub k: usize,
    /// The (k,1) stage feeding the (k,k) step.
    pub method: K1Method,
}

impl GlobalConfig {
    /// Defaults to the expansion method.
    pub fn new(k: usize) -> Self {
        GlobalConfig {
            k,
            method: K1Method::default(),
        }
    }

    /// Selects the (k,1) stage.
    pub fn with_method(mut self, m: K1Method) -> Self {
        self.method = m;
        self
    }
}

/// Runs the chosen (k,1)-anonymizer.
///
/// Panicking wrapper over [`crate::try_k1_anonymize`].
pub fn k1_anonymize(
    table: &Table,
    costs: &NodeCostTable,
    k: usize,
    method: K1Method,
) -> Result<GenOutput> {
    unwrap_or_repanic(crate::try_k1_anonymize(table, costs, k, method))
}

pub(crate) fn k1_impl(
    table: &Table,
    costs: &NodeCostTable,
    k: usize,
    method: K1Method,
) -> Result<GenOutput> {
    match method {
        K1Method::NearestNeighbors => k1_nearest_neighbors(table, costs, k),
        K1Method::Expansion => k1_expansion(table, costs, k),
    }
}

/// (k,k)-anonymization: (k,1) stage + Algorithm 5. O(k·n²).
///
/// Panicking wrapper over [`crate::try_kk_anonymize`].
pub fn kk_anonymize(table: &Table, costs: &NodeCostTable, cfg: &KkConfig) -> Result<GenOutput> {
    unwrap_or_repanic(crate::try_kk_anonymize(table, costs, cfg))
}

pub(crate) fn kk_impl(table: &Table, costs: &NodeCostTable, cfg: &KkConfig) -> Result<GenOutput> {
    let k1 = k1_impl(table, costs, cfg.k, cfg.method)?;
    one_k_impl(table, &k1.table, costs, cfg.k)
}

/// Global (1,k)-anonymization: the (k,k) pipeline + Algorithm 6.
///
/// Panicking wrapper over [`crate::try_global_1k_anonymize`].
pub fn global_1k_anonymize(
    table: &Table,
    costs: &NodeCostTable,
    cfg: &GlobalConfig,
) -> Result<GlobalOutput> {
    unwrap_or_repanic(crate::try_global_1k_anonymize(table, costs, cfg))
}

pub(crate) fn global_impl(
    table: &Table,
    costs: &NodeCostTable,
    cfg: &GlobalConfig,
) -> Result<GlobalOutput> {
    let kk = kk_impl(
        table,
        costs,
        &KkConfig {
            k: cfg.k,
            method: cfg.method,
        },
    )?;
    global_1k_from_kk(table, &kk.table, costs, cfg.k)
}

/// The "best k-anon" protocol of Table I: runs the agglomerative
/// algorithm with each distance function in `distances` (and, when
/// `include_modified`, also the Algorithm 2 variant) and returns the
/// lowest-loss output together with the winning configuration.
///
/// Panicking wrapper over [`crate::try_best_k_anonymize`] (an empty
/// `distances` list re-raises the `Usage` error as a panic, matching the
/// historical `assert!`). A budget-exhausted grid returns its valid
/// best-effort winner silently — use the `try_` form to observe the
/// `BudgetExhausted` marker.
pub fn best_k_anonymize(
    table: &Table,
    costs: &NodeCostTable,
    k: usize,
    distances: &[ClusterDistance],
    include_modified: bool,
) -> Result<(KAnonOutput, AgglomerativeConfig)> {
    unwrap_or_repanic(
        crate::try_best_k_anonymize(table, costs, k, distances, include_modified)
            .map(Budgeted::into_inner),
    )
}

pub(crate) fn best_k_impl(
    table: &Table,
    costs: &NodeCostTable,
    k: usize,
    distances: &[ClusterDistance],
    include_modified: bool,
) -> Result<Budgeted<(KAnonOutput, AgglomerativeConfig)>> {
    assert!(!distances.is_empty(), "need at least one distance function");
    let variants: &[bool] = if include_modified {
        &[false, true]
    } else {
        &[false]
    };
    let configs: Vec<AgglomerativeConfig> = distances
        .iter()
        .flat_map(|&d| {
            variants.iter().map(move |&modified| AgglomerativeConfig {
                k,
                distance: d,
                modified,
            })
        })
        .collect();
    // The protocol's variants are independent whole runs — a coarse grid.
    // Each run keeps a fair share of the workers for its own inner
    // parallelism; the winner is picked serially in config order (strict
    // `<`, so the earliest of equal-loss variants wins, as in the serial
    // sweep).
    //
    // With a work budget armed the grid runs serially instead: the trip
    // point reads the shared counter sum, and concurrent variants would
    // make each other's readings wall-clock dependent. Determinism
    // outranks throughput in degraded mode.
    let outputs: Vec<Result<Budgeted<KAnonOutput>>> = if kanon_obs::work_budget().is_some() {
        (0..configs.len())
            .map(|i| agglomerative_impl(table, costs, &configs[i]))
            .collect()
    } else {
        let inner = (kanon_parallel::num_threads() / configs.len()).max(1);
        kanon_parallel::map_coarse(configs.len(), |i| {
            kanon_parallel::with_threads(inner, || agglomerative_impl(table, costs, &configs[i]))
        })
    };
    let mut best: Option<(KAnonOutput, AgglomerativeConfig)> = None;
    let mut exhausted: Option<(u64, u64)> = None;
    for (out, &cfg) in outputs.into_iter().zip(&configs) {
        let out = match out? {
            Budgeted::Complete(v) => v,
            Budgeted::BudgetExhausted {
                best_so_far,
                budget,
                spent,
            } => {
                exhausted.get_or_insert((budget, spent));
                best_so_far
            }
        };
        let better = match &best {
            None => true,
            Some((b, _)) => out.loss < b.loss,
        };
        if better {
            best = Some((out, cfg));
        }
    }
    // kanon-lint: allow(L006) the variant grid is non-empty, validated by the caller
    let winner = best.expect("at least one variant ran");
    Ok(match exhausted {
        None => Budgeted::Complete(winner),
        Some((budget, spent)) => Budgeted::BudgetExhausted {
            best_so_far: winner,
            budget,
            spent,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use kanon_core::record::Record;
    use kanon_core::schema::{SchemaBuilder, SharedSchema};
    use kanon_measures::{EntropyMeasure, LmMeasure};
    use std::sync::Arc;

    fn schema() -> SharedSchema {
        SchemaBuilder::new()
            .categorical_with_groups(
                "c",
                ["a", "b", "c", "d", "e", "f"],
                &[&["a", "b"], &["c", "d"], &["e", "f"], &["a", "b", "c", "d"]],
            )
            .categorical("x", ["p", "q"])
            .build_shared()
            .unwrap()
    }

    fn table(s: &SharedSchema) -> Table {
        let rows = vec![
            Record::from_raw([0, 0]),
            Record::from_raw([1, 0]),
            Record::from_raw([2, 1]),
            Record::from_raw([3, 1]),
            Record::from_raw([4, 0]),
            Record::from_raw([5, 1]),
            Record::from_raw([0, 1]),
            Record::from_raw([2, 0]),
        ];
        Table::new(Arc::clone(s), rows).unwrap()
    }

    #[test]
    fn kk_pipeline_satisfies_kk() {
        let s = schema();
        let t = table(&s);
        let costs = NodeCostTable::compute(&t, &EntropyMeasure);
        for method in [K1Method::NearestNeighbors, K1Method::Expansion] {
            for k in [2, 3] {
                let cfg = KkConfig::new(k).with_method(method);
                let out = kk_anonymize(&t, &costs, &cfg).unwrap();
                let schema = t.schema();
                // (1,k) and (k,1) by direct count.
                use kanon_core::generalize::is_consistent;
                for rec in t.rows() {
                    let deg = out
                        .table
                        .rows()
                        .iter()
                        .filter(|g| is_consistent(schema, rec, g))
                        .count();
                    assert!(deg >= k, "{method:?} k={k}");
                }
                for g in out.table.rows() {
                    let deg = t
                        .rows()
                        .iter()
                        .filter(|r| is_consistent(schema, r, g))
                        .count();
                    assert!(deg >= k, "{method:?} k={k}");
                }
            }
        }
    }

    #[test]
    fn kk_beats_best_k_anonymity() {
        // The paper's second headline: (k,k) improves on the best
        // k-anonymization (here: never worse).
        let s = schema();
        let t = table(&s);
        let costs = NodeCostTable::compute(&t, &LmMeasure);
        for k in [2, 3] {
            let (kanon, _) =
                best_k_anonymize(&t, &costs, k, &ClusterDistance::paper_variants(), true).unwrap();
            let kk = kk_anonymize(&t, &costs, &KkConfig::new(k)).unwrap();
            assert!(kk.loss <= kanon.loss + 1e-9, "k={k}");
        }
    }

    #[test]
    fn global_pipeline_is_global() {
        let s = schema();
        let t = table(&s);
        let costs = NodeCostTable::compute(&t, &EntropyMeasure);
        for k in [2, 3] {
            let out = global_1k_anonymize(&t, &costs, &GlobalConfig::new(k)).unwrap();
            // Validate via the naive neighbour/match definitions.
            use kanon_core::generalize::consistency_adjacency;
            use kanon_matching::{AllowedEdges, BipartiteGraph};
            let adj = consistency_adjacency(&t, &out.table).unwrap();
            let g = BipartiteGraph::from_adjacency(t.num_rows(), &adj);
            let oracle = AllowedEdges::compute(&g);
            assert!(oracle.match_counts().into_iter().all(|c| c >= k), "k={k}");
        }
    }

    #[test]
    fn best_k_anonymize_reports_winner() {
        let s = schema();
        let t = table(&s);
        let costs = NodeCostTable::compute(&t, &EntropyMeasure);
        let (out, cfg) =
            best_k_anonymize(&t, &costs, 2, &ClusterDistance::paper_variants(), false).unwrap();
        assert!(out.clustering.min_cluster_size() >= 2);
        assert!(ClusterDistance::paper_variants()
            .iter()
            .any(|d| d.name() == cfg.distance.name()));
        assert!(!cfg.modified);
    }

    #[test]
    fn method_names() {
        assert_eq!(K1Method::NearestNeighbors.name(), "Alg3+5");
        assert_eq!(K1Method::Expansion.name(), "Alg4+5");
        assert_eq!(K1Method::default(), K1Method::Expansion);
    }
}
