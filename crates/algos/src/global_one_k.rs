//! Algorithm 6 of Sec. V-C: transforming a (k,k)-anonymization into a
//! **global (1,k)-anonymization**.
//!
//! For every original record `R_i`, the algorithm computes its *matches*
//! `P ⊆ Q` (neighbours whose edge extends to a perfect matching of
//! `V_{D,g(D)}`, Def. 4.6). While `|P| < k`, it picks the non-match
//! neighbour `R̄_{j_h}` minimizing `d_h = c(R̄_i + R_{j_h}) − c(R̄_i)` and
//! generalizes `R̄_i` to also cover the original record `R_{j_h}`; this
//! upgrades `R̄_{j_h}` to a match of `R_i` (the pair `(R_i ↔ R̄_{j_h},
//! R_{j_h} ↔ R̄_i)` plus the identity pairing elsewhere is a perfect
//! matching).
//!
//! **Implementation note.** The paper tests each edge with a fresh
//! Hopcroft–Karp run (`O(√n · m²)` total). We use the all-edges oracle of
//! `kanon-matching` — matched edges plus alternating cycles found by one
//! SCC pass over the identity-matching residual digraph — and recompute it
//! **lazily**. Upgrades only *add* consistency edges, so matches never
//! disappear and a stale oracle's match lists are a lower bound on the
//! true ones; additionally, the record `R_{j_h}` absorbed by an upgrade of
//! `R̄_i` is a *guaranteed* new match of `R_i` (the swap matching above).
//! The loop therefore recomputes only when a record's known matches —
//! stale list plus guaranteed additions — still fall short of `k`, and
//! every pick and every deficiency decision is made against a fresh
//! oracle, so the output is byte-identical to recomputing after every
//! upgrade (the equivalence test pins this). The `oracle_recomputes` work
//! counter is bounded by `upgrade_steps + 1`: every recompute after the
//! initial one is triggered by at least one intervening upgrade.

use kanon_core::error::{CoreError, Result};
use kanon_core::generalize::{is_consistent, is_generalization_of, record_join_ground};
use kanon_core::table::{check_aligned, GeneralizedTable, Table};
use kanon_matching::AllowedEdges;
use kanon_measures::NodeCostTable;
use kanon_obs::{count, Counter};

/// Output of Algorithm 6 with upgrade statistics.
#[derive(Debug, Clone)]
pub struct GlobalOutput {
    /// The globally (1,k)-anonymous table.
    pub table: GeneralizedTable,
    /// The information loss under the supplied measure.
    pub loss: f64,
    /// Number of record upgrades performed (`R̄_i ← R̄_i + R_{j_h}` steps).
    pub upgrade_steps: usize,
    /// Number of records that were deficient (had fewer than `k` matches)
    /// when first visited.
    pub deficient_records: usize,
}

/// Mutable adjacency of the consistency graph, kept incrementally.
struct ConsistencyState {
    /// `adj[i]` = generalized rows consistent with original row `i`
    /// (ascending).
    adj: Vec<Vec<u32>>,
}

impl ConsistencyState {
    fn build(table: &Table, gtable: &GeneralizedTable) -> Self {
        let schema = table.schema();
        let n = table.num_rows();
        let mut adj = vec![Vec::new(); n];
        for (i, item) in adj.iter_mut().enumerate() {
            let rec = table.row(i);
            for j in 0..n {
                if is_consistent(schema, rec, gtable.row(j)) {
                    item.push(j as u32);
                }
            }
        }
        ConsistencyState { adj }
    }

    /// Generalized row `col` changed: recompute the column (which left
    /// rows are consistent with it). Only additions can occur because
    /// records only become more general.
    fn refresh_column(&mut self, table: &Table, gtable: &GeneralizedTable, col: usize) {
        let schema = table.schema();
        let colv = col as u32;
        for (i, list) in self.adj.iter_mut().enumerate() {
            if is_consistent(schema, table.row(i), gtable.row(col)) {
                if let Err(pos) = list.binary_search(&colv) {
                    list.insert(pos, colv);
                }
            }
        }
    }

    #[cfg(test)]
    fn graph(&self, n_right: usize) -> kanon_matching::BipartiteGraph {
        kanon_matching::BipartiteGraph::from_adjacency(n_right, &self.adj)
    }
}

/// Runs Algorithm 6 on a (k,k)-anonymization (any row-wise generalization
/// whose consistency graph has all degrees ≥ k works; the (k,k) property
/// of the input is validated in debug builds only).
pub fn global_1k_from_kk(
    table: &Table,
    gtable: &GeneralizedTable,
    costs: &NodeCostTable,
    k: usize,
) -> Result<GlobalOutput> {
    let n = table.num_rows();
    if k == 0 || k > n {
        return Err(CoreError::InvalidK { k, n });
    }
    check_aligned(table, gtable)?;
    if !is_generalization_of(table, gtable)? {
        return Err(CoreError::InvalidClustering(
            "input to Algorithm 6 must be a row-wise generalization of the table".into(),
        ));
    }
    let schema = table.schema();
    let _span = kanon_obs::span("global_1k_from_kk");
    let mut out = gtable.clone();
    let mut state = ConsistencyState::build(table, &out);

    // The identity pairing R_i ↔ R̄_i is a perfect matching of the
    // consistency graph (generalization precondition), so the oracle is a
    // single SCC pass — no Hopcroft–Karp, no CSR graph materialization.
    let mut oracle = AllowedEdges::compute_identity_from_adjacency(&state.adj);
    count(Counter::OracleRecomputes, 1);
    // Whether `oracle` predates some upgrade. A stale oracle's match lists
    // are still valid lower bounds (upgrades only add edges).
    let mut stale = false;

    let mut upgrade_steps = 0usize;
    let mut deficient_records = 0usize;

    for i in 0..n {
        // Guaranteed matches of `i` beyond the (possibly stale) oracle's
        // list: the records absorbed by i's own upgrades since the last
        // recompute (each is a new match via the explicit swap matching —
        // see the module doc). Cleared on recompute, when the fresh list
        // subsumes them.
        let mut extra: Vec<u32> = Vec::new();
        let mut counted_deficient = false;
        // Paper line 8: "Return to Step 3" — re-derive P after each
        // upgrade until |P| ≥ k, recomputing lazily.
        loop {
            if oracle.matches_of(i).len() + extra.len() >= k {
                break;
            }
            if stale {
                oracle = AllowedEdges::compute_identity_from_adjacency(&state.adj);
                count(Counter::OracleRecomputes, 1);
                stale = false;
                extra.clear();
                continue;
            }
            // The oracle is exact from here on: |P| < k is certain, and
            // `extra` is empty.
            if !counted_deficient {
                counted_deficient = true;
                deficient_records += 1;
            }
            let matches = oracle.matches_of(i);
            // Non-match neighbours Q \ P, cheapest to absorb into R̄_i.
            let mut best: Option<(f64, u32)> = None;
            let ci = costs.record_cost(out.row(i));
            for &j in &state.adj[i] {
                if matches.binary_search(&j).is_ok() {
                    continue;
                }
                let joined = record_join_ground(schema, out.row(i), table.row(j as usize));
                let dh = costs.record_cost(&joined) - ci;
                let better = match best {
                    None => true,
                    Some((bd, bj)) => {
                        dh.total_cmp(&bd).is_lt() || (dh.total_cmp(&bd).is_eq() && j < bj)
                    }
                };
                if better {
                    best = Some((dh, j));
                }
            }
            let Some((_, jh)) = best else {
                // No non-match neighbour left: every neighbour is already a
                // match yet there are fewer than k of them, i.e. record i
                // has fewer than k neighbours. The input was not a
                // (1,k)-anonymization, violating the precondition.
                return Err(CoreError::InvalidClustering(format!(
                    "record {i} has only {} neighbours (< k = {k}); \
                     Algorithm 6 requires a (k,k)-anonymized input",
                    state.adj[i].len()
                )));
            };
            // Upgrade: R̄_i ← R̄_i + R_{j_h}.
            let upgraded = record_join_ground(schema, out.row(i), table.row(jh as usize));
            *out.row_mut(i) = upgraded;
            upgrade_steps += 1;
            // Column i of the consistency graph changed; the oracle now
            // lags it, but R̄_{j_h} is already known to be a match of R_i.
            state.refresh_column(table, &out, i);
            extra.push(jh);
            stale = true;
        }
    }

    count(Counter::UpgradeSteps, upgrade_steps as u64);
    count(Counter::DeficientRecords, deficient_records as u64);
    let loss = costs.table_loss(&out);
    Ok(GlobalOutput {
        table: out,
        loss,
        upgrade_steps,
        deficient_records,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::k1::k1_expansion;
    use crate::one_k::one_k_anonymize;
    use kanon_core::record::Record;
    use kanon_core::schema::{SchemaBuilder, SharedSchema};
    use kanon_matching::Matching;
    use kanon_measures::{EntropyMeasure, LmMeasure};
    use std::sync::Arc;

    /// The pre-fix reference implementation: rebuilds the CSR graph and
    /// recomputes the full oracle after **every** upgrade. Kept verbatim
    /// (modulo counters) so the equivalence test can assert the lazy
    /// incremental oracle changes no output byte.
    fn global_1k_reference(
        table: &Table,
        gtable: &GeneralizedTable,
        costs: &NodeCostTable,
        k: usize,
    ) -> Result<GlobalOutput> {
        let n = table.num_rows();
        if k == 0 || k > n {
            return Err(CoreError::InvalidK { k, n });
        }
        check_aligned(table, gtable)?;
        if !is_generalization_of(table, gtable)? {
            return Err(CoreError::InvalidClustering("not a generalization".into()));
        }
        let schema = table.schema();
        let mut out = gtable.clone();
        let mut state = ConsistencyState::build(table, &out);
        let identity = Matching {
            pair_left: (0..n as u32).collect(),
            pair_right: (0..n as u32).collect(),
            size: n,
        };
        let mut oracle = AllowedEdges::compute_with_matching(&state.graph(n), &identity);
        let mut upgrade_steps = 0usize;
        let mut deficient_records = 0usize;
        for i in 0..n {
            if oracle.matches_of(i).len() < k {
                deficient_records += 1;
            }
            while oracle.matches_of(i).len() < k {
                let matches = oracle.matches_of(i);
                let mut best: Option<(f64, u32)> = None;
                let ci = costs.record_cost(out.row(i));
                for &j in &state.adj[i] {
                    if matches.binary_search(&j).is_ok() {
                        continue;
                    }
                    let joined = record_join_ground(schema, out.row(i), table.row(j as usize));
                    let dh = costs.record_cost(&joined) - ci;
                    let better = match best {
                        None => true,
                        Some((bd, bj)) => {
                            dh.total_cmp(&bd).is_lt() || (dh.total_cmp(&bd).is_eq() && j < bj)
                        }
                    };
                    if better {
                        best = Some((dh, j));
                    }
                }
                let Some((_, jh)) = best else {
                    return Err(CoreError::InvalidClustering("input not (k,k)".into()));
                };
                let upgraded = record_join_ground(schema, out.row(i), table.row(jh as usize));
                *out.row_mut(i) = upgraded;
                upgrade_steps += 1;
                state.refresh_column(table, &out, i);
                oracle = AllowedEdges::compute_with_matching(&state.graph(n), &identity);
            }
        }
        let loss = costs.table_loss(&out);
        Ok(GlobalOutput {
            table: out,
            loss,
            upgrade_steps,
            deficient_records,
        })
    }

    fn schema() -> SharedSchema {
        SchemaBuilder::new()
            .categorical_with_groups(
                "c",
                ["a", "b", "c", "d", "e", "f"],
                &[&["a", "b"], &["c", "d"], &["e", "f"], &["a", "b", "c", "d"]],
            )
            .categorical("x", ["p", "q"])
            .build_shared()
            .unwrap()
    }

    fn table(s: &SharedSchema) -> Table {
        let rows = vec![
            Record::from_raw([0, 0]),
            Record::from_raw([1, 0]),
            Record::from_raw([2, 1]),
            Record::from_raw([3, 1]),
            Record::from_raw([4, 0]),
            Record::from_raw([5, 1]),
        ];
        Table::new(Arc::clone(s), rows).unwrap()
    }

    fn global_level(t: &Table, g: &GeneralizedTable) -> usize {
        let state = ConsistencyState::build(t, g);
        let n = t.num_rows();
        let identity = Matching {
            pair_left: (0..n as u32).collect(),
            pair_right: (0..n as u32).collect(),
            size: n,
        };
        let oracle = AllowedEdges::compute_with_matching(&state.graph(n), &identity);
        oracle.match_counts().into_iter().min().unwrap()
    }

    #[test]
    fn kk_pipeline_becomes_global() {
        let s = schema();
        let t = table(&s);
        for k in [2, 3] {
            let costs = NodeCostTable::compute(&t, &EntropyMeasure);
            let k1 = k1_expansion(&t, &costs, k).unwrap();
            let kk = one_k_anonymize(&t, &k1.table, &costs, k).unwrap();
            let out = global_1k_from_kk(&t, &kk.table, &costs, k).unwrap();
            assert!(global_level(&t, &out.table) >= k, "k={k}");
            // Still a row-wise generalization.
            assert!(is_generalization_of(&t, &out.table).unwrap());
            // Loss only grows relative to the (k,k) input (monotone joins).
            assert!(out.loss >= kk.loss - 1e-12);
        }
    }

    #[test]
    fn already_global_input_is_untouched() {
        let s = schema();
        let t = table(&s);
        let costs = NodeCostTable::compute(&t, &LmMeasure);
        // Fully suppressed: every permutation is a perfect matching.
        let star = kanon_core::GeneralizedRecord::new(s.suppressed_nodes());
        let g =
            GeneralizedTable::new(Arc::clone(&s), (0..6).map(|_| star.clone()).collect()).unwrap();
        let out = global_1k_from_kk(&t, &g, &costs, 3).unwrap();
        assert_eq!(out.upgrade_steps, 0);
        assert_eq!(out.deficient_records, 0);
        assert_eq!(out.table.rows(), g.rows());
    }

    #[test]
    fn rejects_non_generalization_input() {
        let s = schema();
        let t = table(&s);
        let costs = NodeCostTable::compute(&t, &EntropyMeasure);
        let idg = GeneralizedTable::identity_of(&t);
        // Swap two rows: no longer row-aligned.
        let mut bad = idg.clone();
        let r0 = bad.row(0).clone();
        let r1 = bad.row(1).clone();
        *bad.row_mut(0) = r1;
        *bad.row_mut(1) = r0;
        assert!(global_1k_from_kk(&t, &bad, &costs, 2).is_err());
    }

    #[test]
    fn invalid_k_rejected() {
        let s = schema();
        let t = table(&s);
        let costs = NodeCostTable::compute(&t, &EntropyMeasure);
        let idg = GeneralizedTable::identity_of(&t);
        assert!(global_1k_from_kk(&t, &idg, &costs, 0).is_err());
        assert!(global_1k_from_kk(&t, &idg, &costs, 7).is_err());
    }

    #[test]
    fn incremental_oracle_is_byte_identical_to_full_recompute() {
        // The lazy incremental oracle must not change a single output
        // byte relative to recomputing after every upgrade, across
        // measures, k values, and input generalizations.
        let s = schema();
        let t = table(&s);
        for k in [2, 3, 4] {
            for measure in ["EM", "LM"] {
                let costs = match measure {
                    "EM" => NodeCostTable::compute(&t, &EntropyMeasure),
                    _ => NodeCostTable::compute(&t, &LmMeasure),
                };
                let k1 = k1_expansion(&t, &costs, k).unwrap();
                let kk = one_k_anonymize(&t, &k1.table, &costs, k).unwrap();
                let fast = global_1k_from_kk(&t, &kk.table, &costs, k).unwrap();
                let refr = global_1k_reference(&t, &kk.table, &costs, k).unwrap();
                assert_eq!(
                    fast.table.rows(),
                    refr.table.rows(),
                    "k={k} measure={measure}: output tables differ"
                );
                assert_eq!(fast.upgrade_steps, refr.upgrade_steps, "k={k} {measure}");
                assert_eq!(
                    fast.deficient_records, refr.deficient_records,
                    "k={k} {measure}"
                );
                assert!((fast.loss - refr.loss).abs() < 1e-12, "k={k} {measure}");
            }
        }
    }

    #[test]
    fn oracle_recomputes_bounded_by_upgrades_plus_one() {
        // The acceptance criterion of the incremental fix: every oracle
        // recompute after the initial one is paid for by an upgrade.
        use kanon_obs::{Collector, Counter};
        let s = schema();
        let t = table(&s);
        for k in [2, 3] {
            let costs = NodeCostTable::compute(&t, &EntropyMeasure);
            let k1 = k1_expansion(&t, &costs, k).unwrap();
            let kk = one_k_anonymize(&t, &k1.table, &costs, k).unwrap();
            let c = Collector::new();
            let out = {
                let _g = c.install();
                global_1k_from_kk(&t, &kk.table, &costs, k).unwrap()
            };
            let r = c.report();
            assert_eq!(r.counter(Counter::UpgradeSteps), out.upgrade_steps as u64);
            assert_eq!(
                r.counter(Counter::DeficientRecords),
                out.deficient_records as u64
            );
            assert!(
                r.counter(Counter::OracleRecomputes) <= out.upgrade_steps as u64 + 1,
                "k={k}: {} recomputes for {} upgrades",
                r.counter(Counter::OracleRecomputes),
                out.upgrade_steps
            );
        }
    }

    #[test]
    fn upgrade_statistics_are_consistent() {
        let s = schema();
        let t = table(&s);
        let costs = NodeCostTable::compute(&t, &EntropyMeasure);
        let k1 = k1_expansion(&t, &costs, 2).unwrap();
        let kk = one_k_anonymize(&t, &k1.table, &costs, 2).unwrap();
        let out = global_1k_from_kk(&t, &kk.table, &costs, 2).unwrap();
        // Every deficient record required at least one upgrade.
        assert!(out.upgrade_steps >= out.deficient_records);
    }
}
