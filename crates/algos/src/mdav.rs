//! **MDAV-style microaggregation** (Domingo-Ferrer & Mateo-Sanz) adapted
//! to the paper's hierarchy model — a third clustering baseline
//! (experiment E-A8) besides the forest algorithm and the Mondrian-style
//! splitter. Microaggregation is the dominant k-anonymization heuristic
//! in the statistical-disclosure-control literature, so it anchors the
//! paper's agglomerative family against that tradition.
//!
//! Classic MDAV works in Euclidean space; here distances are the cluster
//! costs `d({·,·})` of the active measure and the "centroid" of a record
//! set is its closure. Each round:
//!
//! 1. compute the closure of all remaining records;
//! 2. find the record `x` *farthest* from that closure (max `d({x} ∪ C)`
//!    proxy: `d` of the pair `{x, closure}`);
//! 3. group `x` with its `k−1` nearest remaining records into a cluster;
//! 4. if at least `2k` records remain, also build the mirror cluster
//!    around the record farthest from `x`;
//! 5. when fewer than `2k` remain, they form the last cluster.

use crate::agglomerative::KAnonOutput;
use crate::cost::CostContext;
use kanon_core::cluster::Clustering;
use kanon_core::error::{CoreError, Result};
use kanon_core::table::Table;
use kanon_measures::NodeCostTable;

/// Runs MDAV-style microaggregation.
///
/// Panicking wrapper over [`crate::try_mdav_k_anonymize`]: domain
/// failures come back as `CoreError`; injected faults and organic panics
/// re-raise as a `KanonError` panic payload.
pub fn mdav_k_anonymize(table: &Table, costs: &NodeCostTable, k: usize) -> Result<KAnonOutput> {
    crate::fallible::unwrap_or_repanic(crate::try_mdav_k_anonymize(table, costs, k))
}

/// MDAV round loop (the implementation behind the panicking wrapper and
/// its `try_` twin).
pub(crate) fn mdav_impl(table: &Table, costs: &NodeCostTable, k: usize) -> Result<KAnonOutput> {
    let n = table.num_rows();
    if k == 0 || k > n {
        return Err(CoreError::InvalidK { k, n });
    }
    let ctx = CostContext::new(table, costs);

    let mut remaining: Vec<u32> = (0..n as u32).collect();
    let mut clusters: Vec<Vec<u32>> = Vec::with_capacity(n / k);

    // Extracts from `remaining` the row farthest from the closure of all
    // remaining rows (ties: lowest row id).
    let farthest_from_closure = |remaining: &[u32], ctx: &CostContext<'_>| -> u32 {
        let closure = ctx.closure_of(remaining);
        let mut best = remaining[0];
        let mut best_d = f64::NEG_INFINITY;
        for &r in remaining {
            let d = ctx.join_row_cost(&closure, r as usize);
            if d.total_cmp(&best_d).is_gt() {
                best_d = d;
                best = r;
            }
        }
        best
    };

    // Builds a cluster of `x` plus its k−1 nearest in `remaining`
    // (removing them from `remaining`).
    let take_cluster = |x: u32, remaining: &mut Vec<u32>, ctx: &CostContext<'_>| -> Vec<u32> {
        remaining.retain(|&r| r != x);
        let mut dists: Vec<(f64, u32)> = remaining
            .iter()
            .map(|&r| (ctx.pair_cost(x as usize, r as usize), r))
            .collect();
        dists.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        let mut cluster = vec![x];
        for &(_, r) in dists.iter().take(k - 1) {
            cluster.push(r);
        }
        let taken: std::collections::BTreeSet<u32> = cluster.iter().copied().collect();
        remaining.retain(|r| !taken.contains(r));
        cluster.sort_unstable();
        cluster
    };

    while remaining.len() >= 2 * k {
        // Farthest record from the global closure…
        let xr = farthest_from_closure(&remaining, &ctx);
        // …and the record farthest from that one (the classic xr/xs pair).
        let xs = {
            let mut best = remaining[0];
            let mut best_d = f64::NEG_INFINITY;
            for &r in &remaining {
                if r == xr {
                    continue;
                }
                let d = ctx.pair_cost(xr as usize, r as usize);
                if d.total_cmp(&best_d).is_gt() {
                    best_d = d;
                    best = r;
                }
            }
            best
        };
        clusters.push(take_cluster(xr, &mut remaining, &ctx));
        if remaining.len() >= k && remaining.contains(&xs) {
            clusters.push(take_cluster(xs, &mut remaining, &ctx));
        }
    }
    if !remaining.is_empty() {
        if remaining.len() >= k {
            remaining.sort_unstable();
            clusters.push(std::mem::take(&mut remaining));
        } else {
            // Fewer than k stragglers: absorb them into their nearest
            // cluster (by closure-join cost).
            for &r in &remaining {
                let mut best = 0usize;
                let mut best_d = f64::INFINITY;
                for (ci, c) in clusters.iter().enumerate() {
                    let closure = ctx.closure_of(c);
                    let d = ctx.join_row_cost(&closure, r as usize);
                    if d.total_cmp(&best_d).is_lt() {
                        best_d = d;
                        best = ci;
                    }
                }
                clusters[best].push(r);
                clusters[best].sort_unstable();
            }
            remaining.clear();
        }
    }

    let clustering = Clustering::from_clusters(n, clusters)?;
    let gtable = clustering.to_generalized_table(table)?;
    let loss = costs.table_loss(&gtable);
    Ok(KAnonOutput {
        clustering,
        table: gtable,
        loss,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use kanon_core::record::Record;
    use kanon_core::schema::SchemaBuilder;
    use kanon_measures::{EntropyMeasure, LmMeasure};
    use std::sync::Arc;

    fn table(n: usize) -> Table {
        let s = SchemaBuilder::new()
            .categorical_with_groups(
                "c",
                ["a", "b", "c", "d", "e", "f"],
                &[&["a", "b"], &["c", "d"], &["e", "f"]],
            )
            .numeric_with_intervals("x", 0, 9, &[2, 4])
            .build_shared()
            .unwrap();
        let rows = (0..n)
            .map(|i| Record::from_raw([(i % 6) as u32, ((i * 7) % 10) as u32]))
            .collect();
        Table::new(Arc::clone(&s), rows).unwrap()
    }

    #[test]
    fn output_is_k_anonymous() {
        for n in [10, 17, 24] {
            let t = table(n);
            let costs = NodeCostTable::compute(&t, &EntropyMeasure);
            for k in [2, 3, 5] {
                let out = mdav_k_anonymize(&t, &costs, k).unwrap();
                assert!(
                    out.clustering.min_cluster_size() >= k,
                    "n={n} k={k}: min {}",
                    out.clustering.min_cluster_size()
                );
                assert_eq!(
                    out.clustering
                        .clusters()
                        .iter()
                        .map(Vec::len)
                        .sum::<usize>(),
                    n
                );
            }
        }
    }

    #[test]
    fn cluster_sizes_are_tight() {
        // MDAV builds clusters of exactly k except the last (≤ 2k−1).
        let t = table(23);
        let costs = NodeCostTable::compute(&t, &LmMeasure);
        let out = mdav_k_anonymize(&t, &costs, 4).unwrap();
        let mut sizes: Vec<usize> = out.clustering.clusters().iter().map(Vec::len).collect();
        sizes.sort_unstable();
        assert!(*sizes.last().unwrap() <= 2 * 4 - 1 + 3); // last + absorbed stragglers
        assert!(sizes[..sizes.len() - 1].iter().all(|&s| s >= 4));
    }

    #[test]
    fn deterministic() {
        let t = table(20);
        let costs = NodeCostTable::compute(&t, &EntropyMeasure);
        let a = mdav_k_anonymize(&t, &costs, 3).unwrap();
        let b = mdav_k_anonymize(&t, &costs, 3).unwrap();
        assert_eq!(a.clustering, b.clustering);
    }

    #[test]
    fn invalid_k_rejected() {
        let t = table(10);
        let costs = NodeCostTable::compute(&t, &EntropyMeasure);
        assert!(mdav_k_anonymize(&t, &costs, 0).is_err());
        assert!(mdav_k_anonymize(&t, &costs, 11).is_err());
    }

    #[test]
    fn k_equals_n_single_cluster() {
        let t = table(8);
        let costs = NodeCostTable::compute(&t, &EntropyMeasure);
        let out = mdav_k_anonymize(&t, &costs, 8).unwrap();
        assert_eq!(out.clustering.num_clusters(), 1);
    }
}
