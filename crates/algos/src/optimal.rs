//! Exhaustive optimal k-anonymization for tiny tables — a test oracle.
//!
//! Enumerates every partition of the rows into clusters of size ≥ k and
//! returns one minimizing the clustering cost `Σ_S |S| · d(S) = n · Π`
//! (Eq. 7). The search walks the canonical set-partition tree (each row
//! joins an existing cluster or opens a new one) with a feasibility prune:
//! a partial partition is abandoned when the remaining rows cannot fill
//! every deficient cluster up to `k`.
//!
//! Optimal k-anonymity is NP-hard (Meyerson & Williams), so this is
//! intentionally exponential; use on `n ≲ 12`.

use crate::agglomerative::KAnonOutput;
use crate::cost::CostContext;
use kanon_core::cluster::Clustering;
use kanon_core::error::{CoreError, Result};
use kanon_core::hierarchy::NodeId;
use kanon_core::table::Table;
use kanon_measures::NodeCostTable;

struct Search<'a> {
    ctx: CostContext<'a>,
    k: usize,
    n: usize,
    /// Working clusters: members + closure nodes.
    clusters: Vec<(Vec<u32>, Vec<NodeId>)>,
    /// Best complete assignment found so far.
    best_cost: f64,
    best: Option<Vec<Vec<u32>>>,
}

impl Search<'_> {
    /// Cost of the current (complete) partition: Σ |S| · d(S).
    fn current_cost(&self) -> f64 {
        self.clusters
            .iter()
            .map(|(m, nodes)| m.len() as f64 * self.ctx.cost(nodes))
            .sum()
    }

    /// Can the remaining rows still fill all deficient clusters?
    fn feasible(&self, next_row: usize) -> bool {
        let remaining = self.n - next_row;
        let deficit: usize = self
            .clusters
            .iter()
            .map(|(m, _)| self.k.saturating_sub(m.len()))
            .sum();
        deficit <= remaining
    }

    fn recurse(&mut self, row: usize) {
        if !self.feasible(row) {
            return;
        }
        if row == self.n {
            // feasible(n) guarantees every cluster has ≥ k members.
            debug_assert!(self.clusters.iter().all(|(m, _)| m.len() >= self.k));
            let cost = self.current_cost();
            if cost.total_cmp(&self.best_cost).is_lt() {
                self.best_cost = cost;
                self.best = Some(self.clusters.iter().map(|(m, _)| m.clone()).collect());
            }
            return;
        }
        // Join an existing cluster.
        for c in 0..self.clusters.len() {
            let saved_nodes = self.clusters[c].1.clone();
            self.clusters[c].0.push(row as u32);
            let mut nodes = saved_nodes.clone();
            self.ctx.join_row_into(&mut nodes, row);
            self.clusters[c].1 = nodes;
            self.recurse(row + 1);
            self.clusters[c].0.pop();
            self.clusters[c].1 = saved_nodes;
        }
        // Open a new cluster (canonical: only as the last cluster).
        self.clusters
            .push((vec![row as u32], self.ctx.leaf_nodes(row)));
        self.recurse(row + 1);
        self.clusters.pop();
    }
}

/// Finds an optimal k-anonymization by exhaustive search.
///
/// Panicking wrapper over [`crate::try_optimal_k_anonymize`]: domain
/// failures come back as `CoreError`; injected faults and organic panics
/// re-raise as a `KanonError` panic payload.
pub fn optimal_k_anonymize(table: &Table, costs: &NodeCostTable, k: usize) -> Result<KAnonOutput> {
    crate::fallible::unwrap_or_repanic(crate::try_optimal_k_anonymize(table, costs, k))
}

/// Canonical set-partition search (the implementation behind the
/// panicking wrapper and its `try_` twin).
pub(crate) fn optimal_impl(table: &Table, costs: &NodeCostTable, k: usize) -> Result<KAnonOutput> {
    let n = table.num_rows();
    if k == 0 || k > n {
        return Err(CoreError::InvalidK { k, n });
    }
    let ctx = CostContext::new(table, costs);
    let mut search = Search {
        ctx,
        k,
        n,
        clusters: Vec::new(),
        best_cost: f64::INFINITY,
        best: None,
    };
    search.recurse(0);
    // kanon-lint: allow(L006) a full partition always exists for n >= k
    let clusters = search.best.expect("a full partition always exists (n ≥ k)");
    let clustering = Clustering::from_clusters(n, clusters)?;
    let gtable = clustering.to_generalized_table(table)?;
    let loss = costs.table_loss(&gtable);
    Ok(KAnonOutput {
        clustering,
        table: gtable,
        loss,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agglomerative::{agglomerative_k_anonymize, AgglomerativeConfig};
    use crate::distance::ClusterDistance;
    use crate::forest::forest_k_anonymize;
    use kanon_core::record::Record;
    use kanon_core::schema::{SchemaBuilder, SharedSchema};
    use kanon_measures::{EntropyMeasure, LmMeasure};
    use std::sync::Arc;

    fn schema() -> SharedSchema {
        SchemaBuilder::new()
            .categorical_with_groups(
                "c",
                ["a", "b", "c", "d", "e", "f"],
                &[&["a", "b"], &["c", "d"], &["e", "f"], &["c", "d", "e", "f"]],
            )
            .categorical("x", ["p", "q"])
            .build_shared()
            .unwrap()
    }

    fn table(s: &SharedSchema) -> Table {
        let rows = vec![
            Record::from_raw([0, 0]),
            Record::from_raw([1, 1]),
            Record::from_raw([2, 0]),
            Record::from_raw([3, 0]),
            Record::from_raw([4, 1]),
            Record::from_raw([5, 1]),
            Record::from_raw([0, 1]),
        ];
        Table::new(Arc::clone(s), rows).unwrap()
    }

    #[test]
    fn optimal_is_k_anonymous() {
        let s = schema();
        let t = table(&s);
        let costs = NodeCostTable::compute(&t, &LmMeasure);
        for k in [2, 3] {
            let out = optimal_k_anonymize(&t, &costs, k).unwrap();
            assert!(out.clustering.min_cluster_size() >= k);
        }
    }

    #[test]
    fn heuristics_never_beat_optimal() {
        let s = schema();
        let t = table(&s);
        for k in [2, 3] {
            for measure_loss in [
                NodeCostTable::compute(&t, &EntropyMeasure),
                NodeCostTable::compute(&t, &LmMeasure),
            ] {
                let opt = optimal_k_anonymize(&t, &measure_loss, k).unwrap();
                for d in ClusterDistance::paper_variants() {
                    let cfg = AgglomerativeConfig::new(k).with_distance(d);
                    let heur = agglomerative_k_anonymize(&t, &measure_loss, &cfg).unwrap();
                    assert!(
                        opt.loss <= heur.loss + 1e-9,
                        "optimal {} > heuristic {} (k={k}, {d})",
                        opt.loss,
                        heur.loss
                    );
                }
                let forest = forest_k_anonymize(&t, &measure_loss, k).unwrap();
                assert!(opt.loss <= forest.loss + 1e-9);
            }
        }
    }

    #[test]
    fn forest_respects_approximation_bound() {
        // 3(k−1)-approximation guarantee of the forest algorithm, tested
        // against the true optimum. (The bound is on the clustering cost,
        // which is proportional to the loss.)
        let s = schema();
        let t = table(&s);
        let costs = NodeCostTable::compute(&t, &LmMeasure);
        for k in [2, 3] {
            let opt = optimal_k_anonymize(&t, &costs, k).unwrap();
            let forest = forest_k_anonymize(&t, &costs, k).unwrap();
            if opt.loss > 0.0 {
                assert!(
                    forest.loss <= 3.0 * (k as f64 - 1.0) * opt.loss + 1e-9,
                    "k={k}: forest {} > 3(k−1)·opt {}",
                    forest.loss,
                    opt.loss
                );
            }
        }
    }

    #[test]
    fn k_equals_n_single_cluster() {
        let s = schema();
        let t = table(&s);
        let costs = NodeCostTable::compute(&t, &LmMeasure);
        let out = optimal_k_anonymize(&t, &costs, 7).unwrap();
        assert_eq!(out.clustering.num_clusters(), 1);
    }

    #[test]
    fn invalid_k_rejected() {
        let s = schema();
        let t = table(&s);
        let costs = NodeCostTable::compute(&t, &LmMeasure);
        assert!(optimal_k_anonymize(&t, &costs, 0).is_err());
        assert!(optimal_k_anonymize(&t, &costs, 8).is_err());
    }
}
