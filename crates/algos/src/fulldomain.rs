//! **Full-domain generalization** (global recoding) — the model of
//! LeFevre et al.'s Incognito, which the paper contrasts with its own
//! local-recoding model in Secs. II–III: *"local recoding is more
//! flexible, hence it offers higher utility."* This module makes that
//! claim testable (experiment E-A7).
//!
//! In full-domain generalization one recoding level per **attribute** is
//! chosen and applied to *every* record: level ℓ maps each value to the
//! ancestor ℓ steps above its leaf (clamped at the root). A lattice node
//! is a vector of levels; k-anonymity is **monotone** along lattice edges
//! (recoding coarser only merges equivalence classes), which is the
//! Incognito pruning property: once a node is k-anonymous, all its
//! ancestors are, so their k-checks can be skipped.
//!
//! [`fulldomain_k_anonymize`] enumerates the lattice bottom-up with that
//! pruning and returns the minimum-loss k-anonymous node. Lattices here
//! are small (the paper's hierarchies are 2–5 levels deep), so exhaustive
//! enumeration with pruning is exact and fast.

use crate::agglomerative::KAnonOutput;
use kanon_core::cluster::Clustering;
use kanon_core::error::{CoreError, Result};
use kanon_core::hierarchy::{Hierarchy, NodeId};
use kanon_core::table::Table;
use kanon_measures::NodeCostTable;
use std::collections::BTreeMap;

/// A full-domain recoding: one generalization level per attribute.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecodingLevels(pub Vec<u8>);

/// Output of the full-domain anonymizer.
#[derive(Debug, Clone)]
pub struct FullDomainOutput {
    /// The clustering induced by the recoded equivalence classes,
    /// together with the generalized table and loss.
    pub output: KAnonOutput,
    /// The winning lattice node.
    pub levels: RecodingLevels,
    /// Number of lattice nodes whose k-anonymity had to be tested
    /// (after monotonicity pruning).
    pub nodes_tested: usize,
    /// Total lattice size.
    pub lattice_size: usize,
}

/// The ancestor of `leaf` exactly `steps` levels up, clamped at the root.
fn ancestor_at(h: &Hierarchy, leaf: NodeId, steps: u8) -> NodeId {
    let mut cur = leaf;
    for _ in 0..steps {
        match h.parent(cur) {
            Some(p) => cur = p,
            None => break,
        }
    }
    cur
}

/// Finds the minimum-loss k-anonymous full-domain recoding.
///
/// Panicking wrapper over [`crate::try_fulldomain_k_anonymize`]: domain
/// failures come back as `CoreError`; injected faults and organic panics
/// re-raise as a `KanonError` panic payload.
pub fn fulldomain_k_anonymize(
    table: &Table,
    costs: &NodeCostTable,
    k: usize,
) -> Result<FullDomainOutput> {
    crate::fallible::unwrap_or_repanic(crate::try_fulldomain_k_anonymize(table, costs, k))
}

/// Full-domain lattice enumeration (the implementation behind the
/// panicking wrapper and its `try_` twin).
pub(crate) fn fulldomain_impl(
    table: &Table,
    costs: &NodeCostTable,
    k: usize,
) -> Result<FullDomainOutput> {
    let n = table.num_rows();
    if k == 0 || k > n {
        return Err(CoreError::InvalidK { k, n });
    }
    let schema = table.schema();
    let r = schema.num_attrs();

    // Per-attribute maximum level = the deepest leaf's depth.
    let max_level: Vec<u8> = (0..r)
        .map(|j| {
            let h = schema.attr(j).hierarchy();
            (0..h.domain_size() as u32)
                .map(|v| h.depth(h.leaf(kanon_core::ValueId(v))) as u8)
                .max()
                .unwrap_or(0)
        })
        .collect();
    let lattice_size: usize = max_level.iter().map(|&m| m as usize + 1).product();

    // Precompute recodings: recode[j][level][value] = node.
    let recode: Vec<Vec<Vec<NodeId>>> = (0..r)
        .map(|j| {
            let h = schema.attr(j).hierarchy();
            (0..=max_level[j])
                .map(|l| {
                    (0..h.domain_size() as u32)
                        .map(|v| ancestor_at(h, h.leaf(kanon_core::ValueId(v)), l))
                        .collect()
                })
                .collect()
        })
        .collect();

    // Enumerate lattice nodes in non-decreasing total level order so that
    // monotonicity pruning (k-anonymous ⇒ ancestors k-anonymous) applies.
    let mut nodes: Vec<Vec<u8>> = Vec::with_capacity(lattice_size);
    let mut cur = vec![0u8; r];
    loop {
        nodes.push(cur.clone());
        // Odometer increment.
        let mut j = 0;
        loop {
            if j == r {
                break;
            }
            if cur[j] < max_level[j] {
                cur[j] += 1;
                break;
            }
            cur[j] = 0;
            j += 1;
        }
        if j == r {
            break;
        }
    }
    nodes.sort_by_key(|levels| levels.iter().map(|&l| l as u32).sum::<u32>());

    let mut known_anonymous: Vec<Vec<u8>> = Vec::new();
    let mut nodes_tested = 0usize;
    let mut best: Option<(f64, Vec<u8>, Vec<NodeId>)> = None;

    let mut recoded: Vec<NodeId> = vec![NodeId(0); r];
    for levels in &nodes {
        // Monotonicity pruning: dominated by a known-anonymous node?
        let dominated = known_anonymous
            .iter()
            .any(|a| a.iter().zip(levels).all(|(&al, &l)| l >= al));
        let is_anon = if dominated {
            true
        } else {
            nodes_tested += 1;
            // Group rows by recoded tuple.
            let mut classes: BTreeMap<Vec<NodeId>, usize> = BTreeMap::new();
            for rec in table.rows() {
                for j in 0..r {
                    recoded[j] = recode[j][levels[j] as usize][rec.get(j).index()];
                }
                *classes.entry(recoded.clone()).or_insert(0) += 1;
            }
            let ok = classes.values().all(|&c| c >= k);
            if ok {
                known_anonymous.push(levels.clone());
            }
            ok
        };
        if !is_anon {
            continue;
        }
        // Loss of this recoding.
        let mut sum = 0.0;
        for rec in table.rows() {
            for j in 0..r {
                sum += costs.entry_cost(j, recode[j][levels[j] as usize][rec.get(j).index()]);
            }
        }
        let loss = sum / (n as f64 * r as f64);
        let better = match &best {
            None => true,
            Some((bl, ..)) => loss < *bl,
        };
        if better {
            best = Some((loss, levels.clone(), Vec::new()));
        }
    }

    // kanon-lint: allow(L006) the all-root node is always feasible, so best is Some
    let (_, levels, _) = best.expect("the all-root node is always k-anonymous for k ≤ n");

    // Materialize the winning recoding as a clustering (equivalence
    // classes of identical recoded tuples). The published table must be
    // the recoded tuples themselves — NOT per-class closures, which can
    // be strictly finer than the chosen lattice node and would make the
    // published loss disagree with the loss that ranked the nodes
    // (breaking the optimality contract and full-domain uniformity).
    let mut class_of: BTreeMap<Vec<NodeId>, u32> = BTreeMap::new();
    let mut assignment = Vec::with_capacity(n);
    let mut grows = Vec::with_capacity(n);
    for rec in table.rows() {
        let tuple: Vec<NodeId> = (0..r)
            .map(|j| recode[j][levels[j] as usize][rec.get(j).index()])
            .collect();
        let next = class_of.len() as u32;
        let id = *class_of.entry(tuple.clone()).or_insert(next);
        assignment.push(id);
        grows.push(kanon_core::GeneralizedRecord::new(tuple));
    }
    let clustering = Clustering::from_assignment(assignment)?;
    let gtable =
        kanon_core::GeneralizedTable::new_unchecked(std::sync::Arc::clone(table.schema()), grows);
    let loss = costs.table_loss(&gtable);
    Ok(FullDomainOutput {
        output: KAnonOutput {
            clustering,
            table: gtable,
            loss,
        },
        levels: RecodingLevels(levels),
        nodes_tested,
        lattice_size,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agglomerative::{agglomerative_k_anonymize, AgglomerativeConfig};
    use kanon_core::record::Record;
    use kanon_core::schema::SchemaBuilder;
    use kanon_measures::{EntropyMeasure, LmMeasure};
    use std::sync::Arc;

    fn table() -> Table {
        let s = SchemaBuilder::new()
            .categorical_with_groups("c", ["a", "b", "c", "d"], &[&["a", "b"], &["c", "d"]])
            .numeric_with_intervals("x", 0, 7, &[2, 4])
            .build_shared()
            .unwrap();
        let mut rows = Vec::new();
        for i in 0..16u32 {
            rows.push(Record::from_raw([i % 4, (i * 3) % 8]));
        }
        Table::new(Arc::clone(&s), rows).unwrap()
    }

    #[test]
    fn output_is_k_anonymous() {
        let t = table();
        let costs = NodeCostTable::compute(&t, &LmMeasure);
        for k in [2, 4, 8] {
            let out = fulldomain_k_anonymize(&t, &costs, k).unwrap();
            assert!(out.output.clustering.min_cluster_size() >= k, "k={k}");
            assert!(kanon_core::generalize::is_generalization_of(&t, &out.output.table).unwrap());
        }
    }

    #[test]
    fn recoding_is_uniform_per_attribute() {
        // Global recoding: all records share the same level per attribute,
        // so every generalized entry of attribute j has the same height.
        let t = table();
        let costs = NodeCostTable::compute(&t, &EntropyMeasure);
        let out = fulldomain_k_anonymize(&t, &costs, 4).unwrap();
        let schema = t.schema();
        for j in 0..schema.num_attrs() {
            let h = schema.attr(j).hierarchy();
            let levels: std::collections::BTreeSet<u32> = out
                .output
                .table
                .rows()
                .iter()
                .map(|grec| h.depth(grec.get(j)))
                .collect();
            // All depths equal OR clamped at the root (depth 0 mixes in
            // only when some leaves are shallower than the level).
            assert!(
                levels.len() <= 2,
                "attr {j}: non-uniform recoding {levels:?}"
            );
        }
    }

    #[test]
    fn local_recoding_is_at_least_as_good() {
        // The paper's Sec. III claim, now as an assertion: the local
        // agglomerative algorithm never loses to the *optimal* full-domain
        // recoding under the same measure.
        let t = table();
        for costs in [
            NodeCostTable::compute(&t, &EntropyMeasure),
            NodeCostTable::compute(&t, &LmMeasure),
        ] {
            for k in [2, 4] {
                let full = fulldomain_k_anonymize(&t, &costs, k).unwrap();
                let local =
                    agglomerative_k_anonymize(&t, &costs, &AgglomerativeConfig::new(k)).unwrap();
                assert!(
                    local.loss <= full.output.loss + 1e-9,
                    "k={k} {}: local {} > full-domain {}",
                    costs.measure_name(),
                    local.loss,
                    full.output.loss
                );
            }
        }
    }

    #[test]
    fn pruning_skips_dominated_nodes() {
        let t = table();
        let costs = NodeCostTable::compute(&t, &LmMeasure);
        let out = fulldomain_k_anonymize(&t, &costs, 2).unwrap();
        assert!(out.nodes_tested <= out.lattice_size);
        assert!(out.lattice_size > 0);
        // Lattice of this schema: (2+1 levels for c) × (3+1 for x) = 12.
        assert_eq!(out.lattice_size, 12);
    }

    #[test]
    fn k_equals_n_suppresses_everything_or_less() {
        let t = table();
        let costs = NodeCostTable::compute(&t, &LmMeasure);
        let out = fulldomain_k_anonymize(&t, &costs, 16).unwrap();
        assert_eq!(out.output.clustering.num_clusters(), 1);
    }

    #[test]
    fn invalid_k_rejected() {
        let t = table();
        let costs = NodeCostTable::compute(&t, &LmMeasure);
        assert!(fulldomain_k_anonymize(&t, &costs, 0).is_err());
        assert!(fulldomain_k_anonymize(&t, &costs, 17).is_err());
    }
}
