//! A Mondrian-style **top-down** k-anonymizer (LeFevre et al., adapted to
//! the paper's laminar-hierarchy model) — an extra baseline contrasting
//! the paper's bottom-up agglomerative family. Not part of the original
//! evaluation; included as an ablation (DESIGN.md E-A6) because top-down
//! partitioners are the other standard local-recoding approach. It also
//! powers the shard-and-conquer pre-partitioning stage
//! ([`crate::shard`]), which reuses the split machinery below.
//!
//! The algorithm keeps a queue of clusters, starting from one cluster
//! holding the whole table. For each cluster it considers, per attribute,
//! the partition of the cluster induced by the children of its closure
//! node, greedily packs those child groups into two bins of balanced
//! size, and performs the feasible (both bins ≥ k) binary split that
//! reduces the clustering cost `Σ |S| d(S)` the most. Clusters with no
//! feasible cost-reducing split are final. The result is k-anonymous by
//! construction.
//!
//! ## Rooted cells
//!
//! `--on-bad-row root` ingestion patches unreadable cells with the
//! attribute's first domain value and records them in
//! `IngestReport::rooted_cells` (kanon-data) — semantically
//! those cells hold the hierarchy *root* ("unknown"), not the patched
//! leaf. The splitter used to place every member by the child containing
//! its leaf value, panicking when a cell's effective value was an
//! interior/root node no child contains. [`mondrian_k_anonymize_rooted`]
//! threads the rooted-cell set through: a rooted attribute's closure is
//! lifted to the root, and an attribute whose closure node *is* some
//! member's effective value is unsplittable for that cluster. Truly
//! inconsistent annotations (cells outside the table) are a typed
//! [`CoreError`] instead of a panic.

use crate::agglomerative::KAnonOutput;
use crate::cost::CostContext;
use crate::fallible::{unwrap_or_repanic, Budgeted};
use kanon_core::cluster::Clustering;
use kanon_core::error::{CoreError, Result};
use kanon_core::hierarchy::{Hierarchy, NodeId};
use kanon_core::schema::Schema;
use kanon_core::table::Table;
use kanon_measures::NodeCostTable;

/// Failpoint name firing once per Mondrian split attempt (see the
/// `kanon-fault` catalogue).
pub const MONDRIAN_FAIL_POINT: &str = "algos/mondrian/split";

/// Validated, sorted `(row, attr)` set of cells whose *effective* value
/// is the attribute's hierarchy root rather than the stored leaf (the
/// `--on-bad-row root` placeholder).
#[derive(Debug, Clone, Default)]
pub(crate) struct RootedCells {
    cells: Vec<(u32, u32)>,
}

impl RootedCells {
    /// Validates and indexes the raw `(row, attr)` pairs of an
    /// `kanon_data::IngestReport`. Out-of-range entries
    /// are inconsistent input, reported as a typed error.
    pub(crate) fn new(n: usize, num_attrs: usize, cells: &[(usize, usize)]) -> Result<Self> {
        let mut v = Vec::with_capacity(cells.len());
        for &(row, attr) in cells {
            if row >= n {
                return Err(CoreError::InconsistentInput(format!(
                    "rooted cell (row {row}, attr {attr}) is outside a table of {n} rows"
                )));
            }
            if attr >= num_attrs {
                return Err(CoreError::AttrOutOfRange { attr, num_attrs });
            }
            v.push((row as u32, attr as u32));
        }
        v.sort_unstable();
        v.dedup();
        Ok(RootedCells { cells: v })
    }

    /// True when no cell is rooted (the fast path stays untouched).
    pub(crate) fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Whether `(row, attr)` is rooted.
    pub(crate) fn is_rooted(&self, row: u32, attr: usize) -> bool {
        self.cells.binary_search(&(row, attr as u32)).is_ok()
    }

    /// The attributes rooted for `row`, ascending.
    pub(crate) fn attrs_of(&self, row: u32) -> impl Iterator<Item = usize> + '_ {
        let lo = self.cells.partition_point(|&(r, _)| r < row);
        self.cells[lo..]
            .iter()
            .take_while(move |&&(r, _)| r == row)
            .map(|&(_, a)| a as usize)
    }
}

/// Cluster closure with rooted cells honoured: the leaf-based closure,
/// then every attribute holding a rooted member cell lifted to the root
/// (the join of "unknown" with anything is the root).
pub(crate) fn closure_rooted(
    ctx: &CostContext<'_>,
    schema: &Schema,
    rooted: &RootedCells,
    members: &[u32],
) -> Vec<NodeId> {
    let mut nodes = ctx.closure_of(members);
    if !rooted.is_empty() {
        for &row in members {
            for j in rooted.attrs_of(row) {
                nodes[j] = schema.attr(j).hierarchy().root();
            }
        }
    }
    nodes
}

/// Partitions `members` by the child of `node` covering each member's
/// effective value at attribute `j`.
///
/// `Ok(None)` means the attribute is unsplittable for this cluster: some
/// member's effective node *is* `node` itself (a rooted cell at the
/// closure root — no child can contain it). `Err` means a member's value
/// escapes `node` entirely, which no closure computed by this crate can
/// produce — truly inconsistent input, surfaced as a typed error instead
/// of the historical `.expect` panic.
pub(crate) fn group_by_child(
    table: &Table,
    h: &Hierarchy,
    j: usize,
    node: NodeId,
    children: &[NodeId],
    members: &[u32],
    rooted: &RootedCells,
) -> Result<Option<Vec<Vec<u32>>>> {
    let mut groups: Vec<Vec<u32>> = vec![Vec::new(); children.len()];
    for &row in members {
        let eff = if rooted.is_rooted(row, j) {
            h.root()
        } else {
            h.leaf(table.row(row as usize).get(j))
        };
        if eff == node {
            return Ok(None);
        }
        match children.iter().position(|&c| h.is_ancestor_or_eq(c, eff)) {
            Some(ci) => groups[ci].push(row),
            None => {
                return Err(CoreError::InconsistentInput(format!(
                    "row {row}, attribute {j}: value lies outside its cluster's closure node"
                )))
            }
        }
    }
    Ok(Some(groups))
}

/// Greedy balanced packing of child groups into two bins (largest group
/// first, always into the currently smaller bin). Deterministic: ties go
/// to the left bin, and the group order is the stable child order.
pub(crate) fn pack_two_bins(groups: &[Vec<u32>]) -> (Vec<u32>, Vec<u32>) {
    let mut order: Vec<usize> = (0..groups.len()).collect();
    order.sort_by_key(|&g| std::cmp::Reverse(groups[g].len()));
    let (mut left, mut right): (Vec<u32>, Vec<u32>) = (Vec::new(), Vec::new());
    for g in order {
        if left.len() <= right.len() {
            left.extend_from_slice(&groups[g]);
        } else {
            right.extend_from_slice(&groups[g]);
        }
    }
    (left, right)
}

/// Runs the top-down Mondrian-style k-anonymizer.
///
/// Panicking wrapper over [`crate::try_mondrian_k_anonymize`]. When a
/// work budget (`KANON_WORK_BUDGET` / `kanon_obs::with_work_budget`) is
/// exhausted mid-run, the valid best-effort result is returned silently —
/// use the `try_` form to observe the `BudgetExhausted` marker.
pub fn mondrian_k_anonymize(table: &Table, costs: &NodeCostTable, k: usize) -> Result<KAnonOutput> {
    mondrian_k_anonymize_rooted(table, costs, k, &[])
}

/// [`mondrian_k_anonymize`] with rooted-cell awareness: `rooted_cells`
/// are the `(data_row, attr)` pairs of an
/// `kanon_data::IngestReport` whose stored leaf is the
/// `--on-bad-row root` placeholder for "unknown".
pub fn mondrian_k_anonymize_rooted(
    table: &Table,
    costs: &NodeCostTable,
    k: usize,
    rooted_cells: &[(usize, usize)],
) -> Result<KAnonOutput> {
    unwrap_or_repanic(
        crate::try_mondrian_k_anonymize_rooted(table, costs, k, rooted_cells)
            .map(Budgeted::into_inner),
    )
}

/// Mondrian implementation with budget-aware graceful degradation.
pub(crate) fn mondrian_impl(
    table: &Table,
    costs: &NodeCostTable,
    k: usize,
    rooted_cells: &[(usize, usize)],
) -> Result<Budgeted<KAnonOutput>> {
    let n = table.num_rows();
    if k == 0 || k > n {
        return Err(CoreError::InvalidK { k, n });
    }
    let schema = table.schema().as_ref();
    let rooted = RootedCells::new(n, schema.num_attrs(), rooted_cells)?;
    let _span = kanon_obs::span("mondrian");
    let ctx = CostContext::new(table, costs);

    // Budget-aware runs need a collector for `spent_work` to be
    // meaningful; install a private one when the caller has none.
    let budget = kanon_obs::work_budget();
    let _budget_obs = match (budget, kanon_obs::current()) {
        (Some(_), None) => Some(kanon_obs::Collector::new().install()),
        _ => None,
    };
    let mut exhausted: Option<(u64, u64)> = None;

    let mut queue: Vec<Vec<u32>> = vec![(0..n as u32).collect()];
    let mut done: Vec<Vec<u32>> = Vec::new();

    while let Some(members) = queue.pop() {
        if members.len() < 2 * k {
            done.push(members);
            continue;
        }
        kanon_fault::fail_point!(MONDRIAN_FAIL_POINT);
        // Graceful degradation: every queue element already has ≥ k
        // members, so draining the queue into the output keeps the
        // clustering valid — just less refined than a full run.
        if let Some(limit) = budget {
            let spent = kanon_obs::spent_work();
            if spent >= limit {
                exhausted = Some((limit, spent));
                done.push(members);
                done.append(&mut queue);
                break;
            }
        }
        let closure = closure_rooted(&ctx, schema, &rooted, &members);
        let current_cost = members.len() as f64 * ctx.cost(&closure);

        // Best feasible binary split over attributes.
        let mut best: Option<(f64, usize, Vec<u32>, Vec<u32>)> = None;
        for (j, &node) in closure.iter().enumerate() {
            let h = schema.attr(j).hierarchy();
            let children = h.children(node);
            if children.len() < 2 {
                continue;
            }
            // Group members by the child of `node` covering their
            // effective value; a rooted cell at the closure node makes
            // the attribute unsplittable for this cluster.
            let groups = match group_by_child(table, h, j, node, children, &members, &rooted)? {
                Some(g) => g,
                None => continue,
            };
            let (left, right) = pack_two_bins(&groups);
            if left.len() < k || right.len() < k {
                continue;
            }
            let split_cost = left.len() as f64
                * ctx.cost(&closure_rooted(&ctx, schema, &rooted, &left))
                + right.len() as f64 * ctx.cost(&closure_rooted(&ctx, schema, &rooted, &right));
            if split_cost < current_cost - 1e-12 {
                let better = match &best {
                    None => true,
                    Some((bc, ..)) => split_cost < *bc,
                };
                if better {
                    best = Some((split_cost, groups.len(), left, right));
                }
            }
        }

        match best {
            Some((_, packed, left, right)) => {
                kanon_obs::count(kanon_obs::Counter::MondrianSplits, 1);
                kanon_obs::count(kanon_obs::Counter::MondrianGroupsPacked, packed as u64);
                queue.push(left);
                queue.push(right);
            }
            None => done.push(members),
        }
    }

    for c in &mut done {
        c.sort_unstable();
    }
    let clustering = Clustering::from_clusters(n, done)?;
    let gtable = clustering.to_generalized_table(table)?;
    let loss = costs.table_loss(&gtable);
    let output = KAnonOutput {
        clustering,
        table: gtable,
        loss,
    };
    Ok(match exhausted {
        None => Budgeted::Complete(output),
        Some((budget, spent)) => Budgeted::BudgetExhausted {
            best_so_far: output,
            budget,
            spent,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use kanon_core::record::Record;
    use kanon_core::schema::SchemaBuilder;
    use kanon_measures::{EntropyMeasure, LmMeasure};
    use std::sync::Arc;

    fn table() -> Table {
        let s = SchemaBuilder::new()
            .categorical_with_groups("c", ["a", "b", "c", "d"], &[&["a", "b"], &["c", "d"]])
            .numeric_with_intervals("age", 0, 19, &[5, 10])
            .build_shared()
            .unwrap();
        let mut rows = Vec::new();
        for i in 0..24u32 {
            rows.push(Record::from_raw([i % 4, (i * 7) % 20]));
        }
        Table::new(Arc::clone(&s), rows).unwrap()
    }

    #[test]
    fn output_is_k_anonymous() {
        let t = table();
        for k in [2, 3, 5, 12] {
            let costs = NodeCostTable::compute(&t, &EntropyMeasure);
            let out = mondrian_k_anonymize(&t, &costs, k).unwrap();
            assert!(out.clustering.min_cluster_size() >= k, "k={k}");
            assert!(kanon_core::generalize::is_generalization_of(&t, &out.table).unwrap());
        }
    }

    #[test]
    fn splits_reduce_loss_vs_single_cluster() {
        let t = table();
        let costs = NodeCostTable::compute(&t, &LmMeasure);
        let out = mondrian_k_anonymize(&t, &costs, 3).unwrap();
        // One big cluster would cost the full-table closure cost.
        let all: Vec<u32> = (0..t.num_rows() as u32).collect();
        let ctx = crate::cost::CostContext::new(&t, &costs);
        let single_cost = ctx.cost(&ctx.closure_of(&all));
        assert!(out.loss < single_cost);
        assert!(out.clustering.num_clusters() > 1);
    }

    #[test]
    fn small_tables_stay_single_cluster() {
        let t = table();
        let costs = NodeCostTable::compute(&t, &EntropyMeasure);
        let out = mondrian_k_anonymize(&t, &costs, 13).unwrap();
        // 24 rows with k = 13: no split can give two bins ≥ 13.
        assert_eq!(out.clustering.num_clusters(), 1);
    }

    #[test]
    fn invalid_k_rejected() {
        let t = table();
        let costs = NodeCostTable::compute(&t, &EntropyMeasure);
        assert!(mondrian_k_anonymize(&t, &costs, 0).is_err());
        assert!(mondrian_k_anonymize(&t, &costs, 25).is_err());
    }

    #[test]
    fn deterministic() {
        let t = table();
        let costs = NodeCostTable::compute(&t, &EntropyMeasure);
        let a = mondrian_k_anonymize(&t, &costs, 3).unwrap();
        let b = mondrian_k_anonymize(&t, &costs, 3).unwrap();
        assert_eq!(a.clustering, b.clustering);
    }

    #[test]
    fn rooted_cell_round_trip_does_not_panic() {
        // Regression for the `.expect("laminar: …")` panic: ingest a table
        // under `--on-bad-row root`, then run Mondrian with the report's
        // rooted cells. The rooted attribute's closure is the root, which
        // no child contains — it must be treated as unsplittable, not a
        // panic.
        use kanon_data::{table_from_csv_with_policy, RowPolicy};
        let s = SchemaBuilder::new()
            .categorical_with_groups("c", ["a", "b", "c", "d"], &[&["a", "b"], &["c", "d"]])
            .categorical("x", ["p", "q"])
            .build_shared()
            .unwrap();
        let mut text = String::new();
        for i in 0..16 {
            let c = ["a", "b", "c", "d", "??"][i % 5]; // every 5th cell unreadable
            let x = ["p", "q"][i % 2];
            text.push_str(&format!("{c},{x}\n"));
        }
        let (t, report) =
            table_from_csv_with_policy(&s, &text, false, RowPolicy::GeneralizeToRoot).unwrap();
        assert!(!report.rooted_cells.is_empty());
        for k in [2, 3, 5] {
            let costs = NodeCostTable::compute(&t, &EntropyMeasure);
            let out = mondrian_k_anonymize_rooted(&t, &costs, k, &report.rooted_cells).unwrap();
            assert!(out.clustering.min_cluster_size() >= k, "k={k}");
            // Every cluster holding a rooted row must generalize the
            // rooted attribute to the root (the cell's true value is
            // unknown, so nothing narrower is sound).
            let h = t.schema().attr(0).hierarchy();
            for &(row, attr) in &report.rooted_cells {
                assert_eq!(attr, 0);
                assert_eq!(out.table.row(row).nodes()[0], h.root(), "row {row}");
            }
        }
    }

    #[test]
    fn rooted_cells_outside_the_table_are_typed_errors() {
        let t = table();
        let costs = NodeCostTable::compute(&t, &EntropyMeasure);
        let err = mondrian_k_anonymize_rooted(&t, &costs, 3, &[(999, 0)]).unwrap_err();
        assert!(matches!(err, CoreError::InconsistentInput(_)), "{err}");
        let err = mondrian_k_anonymize_rooted(&t, &costs, 3, &[(0, 9)]).unwrap_err();
        assert!(matches!(err, CoreError::AttrOutOfRange { .. }), "{err}");
    }

    #[test]
    fn rooted_run_equals_plain_run_when_no_cells_are_rooted() {
        let t = table();
        let costs = NodeCostTable::compute(&t, &EntropyMeasure);
        let plain = mondrian_k_anonymize(&t, &costs, 3).unwrap();
        let rooted = mondrian_k_anonymize_rooted(&t, &costs, 3, &[]).unwrap();
        assert_eq!(plain.clustering, rooted.clustering);
        assert_eq!(plain.loss.to_bits(), rooted.loss.to_bits());
    }

    #[test]
    fn budget_exhaustion_degrades_to_valid_output() {
        let t = table();
        let costs = NodeCostTable::compute(&t, &EntropyMeasure);
        let out = kanon_obs::with_work_budget(1, || {
            crate::try_mondrian_k_anonymize(&t, &costs, 3).unwrap()
        });
        assert!(out.is_exhausted());
        let out = out.into_inner();
        assert!(out.clustering.min_cluster_size() >= 3);
    }
}
