//! A Mondrian-style **top-down** k-anonymizer (LeFevre et al., adapted to
//! the paper's laminar-hierarchy model) — an extra baseline contrasting
//! the paper's bottom-up agglomerative family. Not part of the original
//! evaluation; included as an ablation (DESIGN.md E-A6) because top-down
//! partitioners are the other standard local-recoding approach.
//!
//! The algorithm keeps a queue of clusters, starting from one cluster
//! holding the whole table. For each cluster it considers, per attribute,
//! the partition of the cluster induced by the children of its closure
//! node, greedily packs those child groups into two bins of balanced
//! size, and performs the feasible (both bins ≥ k) binary split that
//! reduces the clustering cost `Σ |S| d(S)` the most. Clusters with no
//! feasible cost-reducing split are final. The result is k-anonymous by
//! construction.

use crate::agglomerative::KAnonOutput;
use crate::cost::CostContext;
use kanon_core::cluster::Clustering;
use kanon_core::error::{CoreError, Result};
use kanon_core::table::Table;
use kanon_measures::NodeCostTable;

/// Runs the top-down Mondrian-style k-anonymizer.
pub fn mondrian_k_anonymize(table: &Table, costs: &NodeCostTable, k: usize) -> Result<KAnonOutput> {
    let n = table.num_rows();
    if k == 0 || k > n {
        return Err(CoreError::InvalidK { k, n });
    }
    let ctx = CostContext::new(table, costs);
    let schema = table.schema();

    let mut queue: Vec<Vec<u32>> = vec![(0..n as u32).collect()];
    let mut done: Vec<Vec<u32>> = Vec::new();

    while let Some(members) = queue.pop() {
        if members.len() < 2 * k {
            done.push(members);
            continue;
        }
        let closure = ctx.closure_of(&members);
        let current_cost = members.len() as f64 * ctx.cost(&closure);

        // Best feasible binary split over attributes.
        let mut best: Option<(f64, Vec<u32>, Vec<u32>)> = None;
        for (j, &node) in closure.iter().enumerate() {
            let h = schema.attr(j).hierarchy();
            let children = h.children(node);
            if children.len() < 2 {
                continue;
            }
            // Group members by the child of `node` containing their value.
            let mut groups: Vec<Vec<u32>> = vec![Vec::new(); children.len()];
            for &row in &members {
                let v = table.row(row as usize).get(j);
                let child_idx = children
                    .iter()
                    .position(|&c| h.contains(c, v))
                    // kanon-lint: allow(L006) laminar hierarchy: every value lies in exactly one child
                    .expect("laminar: the value lies in exactly one child");
                groups[child_idx].push(row);
            }
            // Greedy balanced packing of the groups into two bins.
            let mut order: Vec<usize> = (0..groups.len()).collect();
            order.sort_by_key(|&g| std::cmp::Reverse(groups[g].len()));
            let (mut left, mut right): (Vec<u32>, Vec<u32>) = (Vec::new(), Vec::new());
            for g in order {
                if left.len() <= right.len() {
                    left.extend_from_slice(&groups[g]);
                } else {
                    right.extend_from_slice(&groups[g]);
                }
            }
            if left.len() < k || right.len() < k {
                continue;
            }
            let split_cost = left.len() as f64 * ctx.cost(&ctx.closure_of(&left))
                + right.len() as f64 * ctx.cost(&ctx.closure_of(&right));
            if split_cost < current_cost - 1e-12 {
                let better = match &best {
                    None => true,
                    Some((bc, ..)) => split_cost < *bc,
                };
                if better {
                    best = Some((split_cost, left, right));
                }
            }
        }

        match best {
            Some((_, left, right)) => {
                queue.push(left);
                queue.push(right);
            }
            None => done.push(members),
        }
    }

    for c in &mut done {
        c.sort_unstable();
    }
    let clustering = Clustering::from_clusters(n, done)?;
    let gtable = clustering.to_generalized_table(table)?;
    let loss = costs.table_loss(&gtable);
    Ok(KAnonOutput {
        clustering,
        table: gtable,
        loss,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use kanon_core::record::Record;
    use kanon_core::schema::SchemaBuilder;
    use kanon_measures::{EntropyMeasure, LmMeasure};
    use std::sync::Arc;

    fn table() -> Table {
        let s = SchemaBuilder::new()
            .categorical_with_groups("c", ["a", "b", "c", "d"], &[&["a", "b"], &["c", "d"]])
            .numeric_with_intervals("age", 0, 19, &[5, 10])
            .build_shared()
            .unwrap();
        let mut rows = Vec::new();
        for i in 0..24u32 {
            rows.push(Record::from_raw([i % 4, (i * 7) % 20]));
        }
        Table::new(Arc::clone(&s), rows).unwrap()
    }

    #[test]
    fn output_is_k_anonymous() {
        let t = table();
        for k in [2, 3, 5, 12] {
            let costs = NodeCostTable::compute(&t, &EntropyMeasure);
            let out = mondrian_k_anonymize(&t, &costs, k).unwrap();
            assert!(out.clustering.min_cluster_size() >= k, "k={k}");
            assert!(kanon_core::generalize::is_generalization_of(&t, &out.table).unwrap());
        }
    }

    #[test]
    fn splits_reduce_loss_vs_single_cluster() {
        let t = table();
        let costs = NodeCostTable::compute(&t, &LmMeasure);
        let out = mondrian_k_anonymize(&t, &costs, 3).unwrap();
        // One big cluster would cost the full-table closure cost.
        let all: Vec<u32> = (0..t.num_rows() as u32).collect();
        let ctx = crate::cost::CostContext::new(&t, &costs);
        let single_cost = ctx.cost(&ctx.closure_of(&all));
        assert!(out.loss < single_cost);
        assert!(out.clustering.num_clusters() > 1);
    }

    #[test]
    fn small_tables_stay_single_cluster() {
        let t = table();
        let costs = NodeCostTable::compute(&t, &EntropyMeasure);
        let out = mondrian_k_anonymize(&t, &costs, 13).unwrap();
        // 24 rows with k = 13: no split can give two bins ≥ 13.
        assert_eq!(out.clustering.num_clusters(), 1);
    }

    #[test]
    fn invalid_k_rejected() {
        let t = table();
        let costs = NodeCostTable::compute(&t, &EntropyMeasure);
        assert!(mondrian_k_anonymize(&t, &costs, 0).is_err());
        assert!(mondrian_k_anonymize(&t, &costs, 25).is_err());
    }

    #[test]
    fn deterministic() {
        let t = table();
        let costs = NodeCostTable::compute(&t, &EntropyMeasure);
        let a = mondrian_k_anonymize(&t, &costs, 3).unwrap();
        let b = mondrian_k_anonymize(&t, &costs, 3).unwrap();
        assert_eq!(a.clustering, b.clustering);
    }
}
