//! The four cluster-distance functions of Sec. V-A.2 (Eqs. 8–11), plus the
//! asymmetric Nergiz–Clifton variant mentioned at the end of that section.
//!
//! All five are functions of `(|A|, d(A), |B|, d(B), |A∪B|, d(A∪B))` only,
//! so algorithm code computes the join cost once and dispatches here.

/// The paper's default ε for distance function 4 ("in our experiments we
/// used ε = 0.1").
pub const DEFAULT_EPSILON: f64 = 0.1;

/// A cluster-to-cluster distance for the agglomerative algorithms.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ClusterDistance {
    /// Eq. (8): `|A∪B|·d(A∪B) − |A|·d(A) − |B|·d(B)` — the exact increase
    /// of the clustering cost Σ|S|·d(S); favours unifying small clusters
    /// (balanced growth).
    D1,
    /// Eq. (9): `d(A∪B) − d(A) − d(B)` — may be negative; yields
    /// unbalanced cluster growth, which the paper found preferable.
    D2,
    /// Eq. (10): `(d(A∪B) − d(A) − d(B)) / log2|A∪B|` — pushes the
    /// unbalanced idea further by prioritizing additions to larger
    /// clusters; one of the two consistently-best functions.
    D3,
    /// Eq. (11): `d(A∪B) / (d(A) + d(B) + ε)` — the factor by which the
    /// union's cost exceeds the parts'; the other consistently-best
    /// function.
    D4 {
        /// The additive constant guarding against zero denominators when
        /// both clusters are singletons.
        epsilon: f64,
    },
    /// Nergiz & Clifton (ICDE Workshops 2006): `d(A∪B) − d(B)` — an
    /// asymmetric version of [`ClusterDistance::D2`].
    NergizClifton,
}

impl ClusterDistance {
    /// Eq. (11) with the paper's ε = 0.1.
    pub const fn d4() -> Self {
        ClusterDistance::D4 {
            epsilon: DEFAULT_EPSILON,
        }
    }

    /// The four functions evaluated in the paper's experiments.
    pub const fn paper_variants() -> [ClusterDistance; 4] {
        [
            ClusterDistance::D1,
            ClusterDistance::D2,
            ClusterDistance::D3,
            ClusterDistance::d4(),
        ]
    }

    /// Short display name ("D1" … "D4", "NC").
    pub fn name(&self) -> &'static str {
        match self {
            ClusterDistance::D1 => "D1",
            ClusterDistance::D2 => "D2",
            ClusterDistance::D3 => "D3",
            ClusterDistance::D4 { .. } => "D4",
            ClusterDistance::NergizClifton => "NC",
        }
    }

    /// Is the function asymmetric in its arguments? Symmetric callers
    /// should evaluate both orientations and take the minimum.
    pub fn is_asymmetric(&self) -> bool {
        matches!(self, ClusterDistance::NergizClifton)
    }

    /// Evaluates `dist(A, B)` from sizes and costs. `size_u`/`cost_u`
    /// refer to the union `A∪B`.
    ///
    /// For [`ClusterDistance::D3`] the union size is at least 2 whenever
    /// `A` and `B` are disjoint non-empty clusters, so the logarithm is
    /// positive; a union of size 1 (possible only in degenerate calls)
    /// falls back to the raw D2 value.
    #[inline]
    pub fn eval(
        &self,
        size_a: usize,
        cost_a: f64,
        size_b: usize,
        cost_b: f64,
        size_u: usize,
        cost_u: f64,
    ) -> f64 {
        match *self {
            ClusterDistance::D1 => {
                size_u as f64 * cost_u - size_a as f64 * cost_a - size_b as f64 * cost_b
            }
            ClusterDistance::D2 => cost_u - cost_a - cost_b,
            ClusterDistance::D3 => {
                let delta = cost_u - cost_a - cost_b;
                if size_u >= 2 {
                    delta / (size_u as f64).log2()
                } else {
                    delta
                }
            }
            ClusterDistance::D4 { epsilon } => cost_u / (cost_a + cost_b + epsilon),
            ClusterDistance::NergizClifton => cost_u - cost_b,
        }
    }

    /// Symmetric evaluation: for asymmetric functions, the minimum over
    /// both orientations; otherwise identical to [`Self::eval`].
    #[inline]
    pub fn eval_symmetric(
        &self,
        size_a: usize,
        cost_a: f64,
        size_b: usize,
        cost_b: f64,
        size_u: usize,
        cost_u: f64,
    ) -> f64 {
        if self.is_asymmetric() {
            let ab = self.eval(size_a, cost_a, size_b, cost_b, size_u, cost_u);
            let ba = self.eval(size_b, cost_b, size_a, cost_a, size_u, cost_u);
            ab.min(ba)
        } else {
            self.eval(size_a, cost_a, size_b, cost_b, size_u, cost_u)
        }
    }
}

impl Default for ClusterDistance {
    /// D3 — one of the two functions the paper found consistently best.
    fn default() -> Self {
        ClusterDistance::D3
    }
}

impl std::fmt::Display for ClusterDistance {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn d1_is_clustering_cost_delta() {
        // |A|=2, d(A)=0.5; |B|=1, d(B)=0; |A∪B|=3, d=1.0
        let v = ClusterDistance::D1.eval(2, 0.5, 1, 0.0, 3, 1.0);
        assert!((v - (3.0 - 1.0)).abs() < 1e-12);
    }

    #[test]
    fn d2_can_be_negative() {
        // The paper notes Eq. (9) "may attain negative values".
        let v = ClusterDistance::D2.eval(2, 0.6, 2, 0.6, 4, 1.0);
        assert!(v < 0.0);
    }

    #[test]
    fn d3_divides_by_log_union_size() {
        let d2 = ClusterDistance::D2.eval(2, 0.1, 2, 0.1, 4, 1.0);
        let d3 = ClusterDistance::D3.eval(2, 0.1, 2, 0.1, 4, 1.0);
        assert!((d3 - d2 / 2.0).abs() < 1e-12); // log2(4) = 2
    }

    #[test]
    fn d3_union_of_one_falls_back() {
        let v = ClusterDistance::D3.eval(1, 0.0, 1, 0.0, 1, 0.0);
        assert_eq!(v, 0.0);
    }

    #[test]
    fn d4_epsilon_guards_singletons() {
        // Two singletons: d(A)=d(B)=0; ε keeps the ratio finite.
        let v = ClusterDistance::d4().eval(1, 0.0, 1, 0.0, 2, 0.3);
        assert!((v - 3.0).abs() < 1e-12);
        assert!(v.is_finite());
    }

    #[test]
    fn nc_is_asymmetric() {
        let nc = ClusterDistance::NergizClifton;
        assert!(nc.is_asymmetric());
        let ab = nc.eval(1, 0.1, 1, 0.4, 2, 1.0);
        let ba = nc.eval(1, 0.4, 1, 0.1, 2, 1.0);
        assert!((ab - 0.6).abs() < 1e-12);
        assert!((ba - 0.9).abs() < 1e-12);
        let sym = nc.eval_symmetric(1, 0.1, 1, 0.4, 2, 1.0);
        assert!((sym - 0.6).abs() < 1e-12);
    }

    #[test]
    fn symmetric_functions_commute() {
        for d in ClusterDistance::paper_variants() {
            let ab = d.eval(2, 0.3, 3, 0.7, 5, 1.1);
            let ba = d.eval(3, 0.7, 2, 0.3, 5, 1.1);
            assert!((ab - ba).abs() < 1e-12, "{d} should be symmetric");
        }
    }

    #[test]
    fn names_and_default() {
        assert_eq!(ClusterDistance::default().name(), "D3");
        assert_eq!(ClusterDistance::d4().to_string(), "D4");
        let names: Vec<_> = ClusterDistance::paper_variants()
            .iter()
            .map(|d| d.name())
            .collect();
        assert_eq!(names, vec!["D1", "D2", "D3", "D4"]);
    }
}
