//! Shared working context for the anonymization algorithms: closures as
//! per-attribute node vectors, incremental joins, and cluster costs
//! `d(S) = c(closure(S))` (Eq. 7) backed by a precomputed
//! [`NodeCostTable`].
//!
//! ## The fused signature kernel
//!
//! The hot read path of every algorithm is `cost(join(a, b))` per
//! attribute, evaluated O(n²) times. With the split tables that is two
//! dependent probes — the dense LCA table, then the cost row — each a
//! pointer-chase into a different allocation. [`CostContext::new`] fuses
//! them: one interleaved `(node, cost)` entry per `(a, b)` pair, so a
//! distance evaluation streams exactly one 16-byte probe per attribute.
//! Fused probes count [`kanon_obs::Counter::SignatureBytesStreamed`]
//! (bytes, thread-count invariant) *instead of* `JoinTableHits`; the
//! materializing joins (`join_row_into`/`join_nodes_into`, O(n) merge
//! work) keep the split tables and the old counters. Costs in the fused
//! table are bit-copied from the cost row and summed in the same
//! ascending-attribute order, so every result is byte-identical to the
//! two-probe path.
//!
//! Row leaf signatures are also flattened once ([`CostContext::new`])
//! into a contiguous `n × r` lane (`row_sigs`), which turns
//! `pair_cost`/`join_row_cost` leaf lookups into array reads. The
//! engine-side analogue for *clusters* is [`SigArena`]: per-attribute
//! `u32` node lanes indexed by engine slot, evaluated with
//! [`CostContext::arena_join_cost`].

use kanon_core::hierarchy::{Hierarchy, NodeId};
use kanon_core::record::GeneralizedRecord;
use kanon_core::table::Table;
use kanon_measures::NodeCostTable;
use std::sync::Arc;

/// Per-attribute join/cost kernel: the hierarchy, its dense pairwise join
/// table (when built under the node budget — see
/// [`Hierarchy::rebuild_join_table`]), and the measure's dense cost row.
/// With the table present, `join ∘ cost` for one attribute is two array
/// loads; without it, the join falls back to the parent-pointer climb.
#[derive(Clone, Copy)]
struct AttrKernel<'a> {
    hierarchy: &'a Hierarchy,
    /// Dense `num_nodes × num_nodes` LCA table, row-major, or `None`
    /// when the hierarchy exceeded its join-table node budget.
    join_table: Option<&'a [u32]>,
    /// Stride of `join_table` rows (= the hierarchy's node count).
    num_nodes: usize,
    /// `cost_row[node.index()]` = measure cost of that node.
    cost_row: &'a [f64],
}

impl<'a> AttrKernel<'a> {
    #[inline]
    fn join(&self, a: NodeId, b: NodeId) -> NodeId {
        match self.join_table {
            Some(t) => {
                kanon_obs::count(kanon_obs::Counter::JoinTableHits, 1);
                NodeId(t[a.index() * self.num_nodes + b.index()])
            }
            None => {
                kanon_obs::count(kanon_obs::Counter::ClimbFallbackHits, 1);
                self.hierarchy.join_uncached(a, b)
            }
        }
    }

    #[inline]
    fn leaf(&self, v: kanon_core::domain::ValueId) -> NodeId {
        self.hierarchy.leaf(v)
    }

    #[inline]
    fn cost(&self, n: NodeId) -> f64 {
        self.cost_row[n.index()]
    }
}

/// One interleaved entry of a fused join×cost table: the joined node and
/// its measure cost, loaded together with a single probe.
#[derive(Clone, Copy)]
struct FusedEntry {
    node: u32,
    cost: f64,
}

/// Bytes one fused probe streams (the counter weight of
/// `SignatureBytesStreamed`).
const FUSED_PROBE_BYTES: u64 = std::mem::size_of::<FusedEntry>() as u64;

/// Fused per-attribute table: `entries[a * stride + b]` holds the join
/// of nodes `a`,`b` *and* that join's cost, interleaved so the hot
/// `cost(join(a, b))` read is one contiguous probe instead of two
/// dependent lookups in separate allocations.
struct FusedAttr {
    entries: Vec<FusedEntry>,
    stride: usize,
}

impl FusedAttr {
    #[inline]
    fn probe(&self, a: u32, b: u32) -> FusedEntry {
        self.entries[a as usize * self.stride + b as usize]
    }
}

/// Flat SoA arena of cluster generalization signatures, indexed by
/// engine slot: `lanes[j][slot]` is the attribute-`j` closure node of
/// that slot's cluster, with the cluster's size and cost alongside. The
/// engine stores every active cluster here so distance scans stream
/// per-attribute `u32` lanes plus one fused probe each, instead of
/// chasing per-cluster `Vec<NodeId>` allocations.
#[derive(Debug)]
pub struct SigArena {
    /// One `u32` node-id lane per attribute, all `len()` slots long.
    lanes: Vec<Vec<u32>>,
    sizes: Vec<u32>,
    costs: Vec<f64>,
}

impl SigArena {
    /// An empty arena for `num_attrs` attributes, with room for
    /// `capacity` slots per lane.
    pub fn with_capacity(num_attrs: usize, capacity: usize) -> Self {
        SigArena {
            lanes: (0..num_attrs)
                .map(|_| Vec::with_capacity(capacity))
                .collect(),
            sizes: Vec::with_capacity(capacity),
            costs: Vec::with_capacity(capacity),
        }
    }

    /// Number of stored slots.
    pub fn len(&self) -> usize {
        self.sizes.len()
    }

    /// True when no slot has been stored yet.
    pub fn is_empty(&self) -> bool {
        self.sizes.is_empty()
    }

    /// Stores (or overwrites) the signature and stats of `slot`. Slots
    /// must be appended densely: `slot <= len()`.
    pub fn store(&mut self, slot: usize, nodes: &[NodeId], size: usize, cost: f64) {
        debug_assert_eq!(nodes.len(), self.lanes.len(), "signature arity");
        debug_assert!(slot <= self.len(), "arena slots are appended densely");
        if slot == self.len() {
            for (lane, n) in self.lanes.iter_mut().zip(nodes) {
                lane.push(n.0);
            }
            self.sizes.push(size as u32);
            self.costs.push(cost);
        } else {
            for (lane, n) in self.lanes.iter_mut().zip(nodes) {
                lane[slot] = n.0;
            }
            self.sizes[slot] = size as u32;
            self.costs[slot] = cost;
        }
    }

    /// Drops every slot at index `len` and above, keeping the first
    /// `len` intact (no-op when the arena is already that short). Lets a
    /// long-lived arena — the serve daemon appends probe slots behind
    /// its resident mature-cluster signatures for each absorption scan —
    /// discard the scratch tail without reallocating the lanes.
    pub fn truncate(&mut self, len: usize) {
        for lane in &mut self.lanes {
            lane.truncate(len);
        }
        self.sizes.truncate(len);
        self.costs.truncate(len);
    }

    /// Stored cluster size of `slot`.
    #[inline]
    pub fn size(&self, slot: usize) -> usize {
        self.sizes[slot] as usize
    }

    /// Stored cluster cost of `slot`.
    #[inline]
    pub fn cost(&self, slot: usize) -> f64 {
        self.costs[slot]
    }
}

/// Borrowed bundle of everything the algorithms need to evaluate cluster
/// costs: the original table (for record values), its schema, and the
/// measure's node costs — plus a per-attribute `AttrKernel` cache that
/// turns the hot `join`/`cost` pair into O(1) array loads.
#[derive(Clone)]
pub struct CostContext<'a> {
    /// The original table `D`.
    pub table: &'a Table,
    /// Precomputed per-node measure costs over `D`.
    pub costs: &'a NodeCostTable,
    /// One kernel per attribute, resolved once at construction.
    attrs: Vec<AttrKernel<'a>>,
    /// Fused `(join, cost)` tables, one per attribute with a dense join
    /// table (`None` = over the node budget, climb fallback). Behind an
    /// `Arc` so cloning the context stays cheap.
    fused: Arc<Vec<Option<FusedAttr>>>,
    /// Flattened row leaf signatures, row-major `n × r`.
    row_sigs: Arc<Vec<u32>>,
}

impl<'a> CostContext<'a> {
    /// Creates a context. The cost table must have been computed over a
    /// table with the same schema (same attribute count is asserted).
    pub fn new(table: &'a Table, costs: &'a NodeCostTable) -> Self {
        assert_eq!(
            table.num_attrs(),
            costs.num_attrs(),
            "cost table and table disagree on attribute count"
        );
        let schema = table.schema();
        let attrs: Vec<AttrKernel<'a>> = (0..schema.num_attrs())
            .map(|j| {
                let h = schema.attr(j).hierarchy();
                AttrKernel {
                    hierarchy: h,
                    join_table: h.join_table_slice(),
                    num_nodes: h.num_nodes(),
                    cost_row: costs.attr_costs(j),
                }
            })
            .collect();
        // Fuse each dense join table with its cost row: costs are
        // bit-copied, so fused sums are bit-identical to the two-probe
        // path. O(nodes²) per attribute, bounded by the join-table node
        // budget — negligible next to the O(n²) scans it accelerates.
        let fused = Arc::new(
            attrs
                .iter()
                .map(|k| {
                    k.join_table.map(|t| FusedAttr {
                        stride: k.num_nodes,
                        entries: t
                            .iter()
                            .map(|&n| FusedEntry {
                                node: n,
                                cost: k.cost_row[n as usize],
                            })
                            .collect(),
                    })
                })
                .collect(),
        );
        let r = attrs.len();
        let mut row_sigs = Vec::with_capacity(table.num_rows() * r);
        for row in 0..table.num_rows() {
            let rec = table.row(row);
            for (j, k) in attrs.iter().enumerate() {
                row_sigs.push(k.leaf(rec.get(j)).0);
            }
        }
        CostContext {
            table,
            costs,
            attrs,
            fused,
            row_sigs: Arc::new(row_sigs),
        }
    }

    /// Number of attributes `r`.
    #[inline]
    pub fn num_attrs(&self) -> usize {
        self.table.num_attrs()
    }

    /// Number of records `n`.
    #[inline]
    pub fn num_rows(&self) -> usize {
        self.table.num_rows()
    }

    /// Leaf nodes of a row (the closure of a singleton cluster), read
    /// from the flattened row-signature lane.
    pub fn leaf_nodes(&self, row: usize) -> Vec<NodeId> {
        self.row_sig(row).iter().map(|&n| NodeId(n)).collect()
    }

    /// The flattened leaf signature of one row (`r` node ids).
    #[inline]
    fn row_sig(&self, row: usize) -> &[u32] {
        let r = self.attrs.len();
        &self.row_sigs[row * r..(row + 1) * r]
    }

    /// `cost(join(a, b))` for attribute `j` plus the bytes streamed:
    /// one fused probe when the attribute has a fused table, else the
    /// split-table / climb fallback (which counts its own hits).
    #[inline]
    fn fused_cost(&self, j: usize, na: u32, nb: u32, streamed: &mut u64) -> f64 {
        match &self.fused[j] {
            Some(f) => {
                *streamed += FUSED_PROBE_BYTES;
                f.probe(na, nb).cost
            }
            None => {
                let k = &self.attrs[j];
                k.cost(k.join(NodeId(na), NodeId(nb)))
            }
        }
    }

    /// Joins row `row` into the closure `acc` in place.
    pub fn join_row_into(&self, acc: &mut [NodeId], row: usize) {
        let rec = self.table.row(row);
        for (j, (slot, k)) in acc.iter_mut().zip(&self.attrs).enumerate() {
            *slot = k.join(*slot, k.leaf(rec.get(j)));
        }
    }

    /// Joins closure `other` into `acc` in place. Uses the fused table's
    /// interleaved node id where available (one probe materializes the
    /// join), the split-table/climb kernel otherwise.
    pub fn join_nodes_into(&self, acc: &mut [NodeId], other: &[NodeId]) {
        let mut streamed = 0u64;
        for (j, (slot, &o)) in acc.iter_mut().zip(other).enumerate() {
            match &self.fused[j] {
                Some(f) => {
                    streamed += FUSED_PROBE_BYTES;
                    *slot = NodeId(f.probe(slot.0, o.0).node);
                }
                None => {
                    let k = &self.attrs[j];
                    *slot = k.join(*slot, o);
                }
            }
        }
        if streamed > 0 {
            kanon_obs::count(kanon_obs::Counter::SignatureBytesStreamed, streamed);
        }
    }

    /// Cost of a closure: `d(S) = c(closure(S))`.
    #[inline]
    pub fn cost(&self, nodes: &[NodeId]) -> f64 {
        self.costs.nodes_cost(nodes)
    }

    /// Cost of the join of two closures without materializing it: one
    /// fused probe per attribute.
    pub fn join_cost(&self, a: &[NodeId], b: &[NodeId]) -> f64 {
        let mut sum = 0.0;
        let mut streamed = 0u64;
        for (j, (&na, &nb)) in a.iter().zip(b).enumerate() {
            sum += self.fused_cost(j, na.0, nb.0, &mut streamed);
        }
        if streamed > 0 {
            kanon_obs::count(kanon_obs::Counter::SignatureBytesStreamed, streamed);
        }
        sum / self.num_attrs() as f64
    }

    /// Cost of the join of two [`SigArena`] slots: the engine's packed
    /// scan path. Same per-attribute values, same ascending-attribute
    /// summation order and same counters as [`Self::join_cost`], so the
    /// result is bit-identical — the arena only changes *where* the
    /// signatures live (contiguous lanes instead of per-cluster vecs).
    pub fn arena_join_cost(&self, arena: &SigArena, a: usize, b: usize) -> f64 {
        let mut sum = 0.0;
        let mut streamed = 0u64;
        for (j, lane) in arena.lanes.iter().enumerate() {
            sum += self.fused_cost(j, lane[a], lane[b], &mut streamed);
        }
        if streamed > 0 {
            kanon_obs::count(kanon_obs::Counter::SignatureBytesStreamed, streamed);
        }
        sum / self.num_attrs() as f64
    }

    /// Cost of the join of a closure with one row without materializing
    /// it, using the flattened row signature.
    pub fn join_row_cost(&self, a: &[NodeId], row: usize) -> f64 {
        let sig = self.row_sig(row);
        let mut sum = 0.0;
        let mut streamed = 0u64;
        for (j, (&na, &nb)) in a.iter().zip(sig).enumerate() {
            sum += self.fused_cost(j, na.0, nb, &mut streamed);
        }
        if streamed > 0 {
            kanon_obs::count(kanon_obs::Counter::SignatureBytesStreamed, streamed);
        }
        sum / self.num_attrs() as f64
    }

    /// Pairwise record cost `d({R_i, R_j})` — the edge weight used by
    /// Algorithm 3 and the forest baseline. Streams the two flattened
    /// row signatures with one fused probe per attribute.
    pub fn pair_cost(&self, i: usize, j: usize) -> f64 {
        kanon_obs::count(kanon_obs::Counter::PairCostEvals, 1);
        let (si, sj) = (self.row_sig(i), self.row_sig(j));
        let mut sum = 0.0;
        let mut streamed = 0u64;
        for (a, (&na, &nb)) in si.iter().zip(sj).enumerate() {
            sum += self.fused_cost(a, na, nb, &mut streamed);
        }
        if streamed > 0 {
            kanon_obs::count(kanon_obs::Counter::SignatureBytesStreamed, streamed);
        }
        sum / self.num_attrs() as f64
    }

    /// Closure of an explicit row set (panics on empty input).
    pub fn closure_of(&self, rows: &[u32]) -> Vec<NodeId> {
        let mut acc = self.leaf_nodes(rows[0] as usize);
        for &row in &rows[1..] {
            self.join_row_into(&mut acc, row as usize);
        }
        acc
    }

    /// Wraps a closure node vector into a [`GeneralizedRecord`].
    pub fn to_record(&self, nodes: &[NodeId]) -> GeneralizedRecord {
        GeneralizedRecord::new(nodes.iter().copied())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kanon_core::record::Record;
    use kanon_core::schema::SchemaBuilder;
    use kanon_measures::LmMeasure;
    use std::sync::Arc;

    fn setup() -> (Table, NodeCostTable) {
        let s = SchemaBuilder::new()
            .categorical_with_groups("c", ["a", "b", "c", "d"], &[&["a", "b"], &["c", "d"]])
            .categorical("x", ["p", "q"])
            .build_shared()
            .unwrap();
        let t = Table::new(
            Arc::clone(&s),
            vec![
                Record::from_raw([0, 0]),
                Record::from_raw([1, 0]),
                Record::from_raw([2, 1]),
                Record::from_raw([3, 1]),
            ],
        )
        .unwrap();
        let c = NodeCostTable::compute(&t, &LmMeasure);
        (t, c)
    }

    #[test]
    fn singleton_cost_zero() {
        let (t, c) = setup();
        let ctx = CostContext::new(&t, &c);
        for i in 0..4 {
            let nodes = ctx.leaf_nodes(i);
            assert_eq!(ctx.cost(&nodes), 0.0);
        }
    }

    #[test]
    fn pair_cost_symmetric_and_matches_closure() {
        let (t, c) = setup();
        let ctx = CostContext::new(&t, &c);
        for i in 0..4 {
            for j in 0..4 {
                assert_eq!(ctx.pair_cost(i, j), ctx.pair_cost(j, i));
                let closure = ctx.closure_of(&[i as u32, j as u32]);
                assert!((ctx.pair_cost(i, j) - ctx.cost(&closure)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn join_costs_agree_with_materialized_joins() {
        let (t, c) = setup();
        let ctx = CostContext::new(&t, &c);
        let a = ctx.closure_of(&[0, 1]);
        let b = ctx.closure_of(&[2, 3]);
        let mut u = a.clone();
        ctx.join_nodes_into(&mut u, &b);
        assert!((ctx.join_cost(&a, &b) - ctx.cost(&u)).abs() < 1e-12);
        let mut ar = a.clone();
        ctx.join_row_into(&mut ar, 2);
        assert!((ctx.join_row_cost(&a, 2) - ctx.cost(&ar)).abs() < 1e-12);
    }

    #[test]
    fn arena_truncate_drops_the_scratch_tail_only() {
        let (t, c) = setup();
        let ctx = CostContext::new(&t, &c);
        let a = ctx.closure_of(&[0, 1]);
        let b = ctx.closure_of(&[2, 3]);
        let mut arena = SigArena::with_capacity(ctx.num_attrs(), 2);
        arena.store(0, &a, 2, ctx.cost(&a));
        let before = ctx.arena_join_cost(&arena, 0, 0).to_bits();
        // Append a probe slot, use it, then discard it.
        arena.store(1, &b, 2, ctx.cost(&b));
        let _ = ctx.arena_join_cost(&arena, 0, 1);
        arena.truncate(1);
        assert_eq!(arena.len(), 1);
        assert_eq!(ctx.arena_join_cost(&arena, 0, 0).to_bits(), before);
        // Re-appending lands in the freed slot.
        arena.store(1, &b, 2, ctx.cost(&b));
        assert_eq!(arena.len(), 2);
        // Truncating to a longer length is a no-op.
        arena.truncate(10);
        assert_eq!(arena.len(), 2);
    }

    #[test]
    fn arena_join_cost_is_bit_identical_to_vec_path() {
        let (t, c) = setup();
        let ctx = CostContext::new(&t, &c);
        let a = ctx.closure_of(&[0, 1]);
        let b = ctx.closure_of(&[2, 3]);
        let mut arena = SigArena::with_capacity(ctx.num_attrs(), 2);
        arena.store(0, &a, 2, ctx.cost(&a));
        arena.store(1, &b, 2, ctx.cost(&b));
        assert_eq!(arena.len(), 2);
        assert_eq!(
            ctx.join_cost(&a, &b).to_bits(),
            ctx.arena_join_cost(&arena, 0, 1).to_bits(),
            "arena path must be bit-identical to the vec path"
        );
        assert_eq!(arena.size(0), 2);
        assert_eq!(arena.cost(1).to_bits(), ctx.cost(&b).to_bits());
        // Overwrite semantics: re-storing a slot replaces its lanes.
        arena.store(0, &b, 2, ctx.cost(&b));
        assert_eq!(
            ctx.arena_join_cost(&arena, 0, 1).to_bits(),
            ctx.join_cost(&b, &b).to_bits()
        );
    }

    #[test]
    fn fused_probes_stream_bytes_instead_of_join_table_hits() {
        let (t, c) = setup();
        let ctx = CostContext::new(&t, &c);
        let a = ctx.closure_of(&[0]);
        let b = ctx.closure_of(&[1]);
        let col = kanon_obs::Collector::new();
        {
            let _g = col.install();
            ctx.join_cost(&a, &b);
            ctx.pair_cost(0, 2);
        }
        let r = col.report();
        // Two fused evaluations × two attributes × 16 bytes each.
        assert_eq!(
            r.counter(kanon_obs::Counter::SignatureBytesStreamed),
            2 * 2 * 16
        );
        assert_eq!(
            r.counter(kanon_obs::Counter::JoinTableHits),
            0,
            "distance evaluations must not touch the split join table"
        );
    }

    #[test]
    fn lm_pair_cost_values() {
        let (t, c) = setup();
        let ctx = CostContext::new(&t, &c);
        // Rows 0,1 share x=p and group {a,b}: LM = ((2−1)/3 + 0)/2 = 1/6.
        assert!((ctx.pair_cost(0, 1) - 1.0 / 6.0).abs() < 1e-12);
        // Rows 0,2: attr c generalizes to root (3/3), x to root (1/1):
        // LM = (1 + 1)/2 = 1.
        assert!((ctx.pair_cost(0, 2) - 1.0).abs() < 1e-12);
    }
}
