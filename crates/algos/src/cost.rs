//! Shared working context for the anonymization algorithms: closures as
//! per-attribute node vectors, incremental joins, and cluster costs
//! `d(S) = c(closure(S))` (Eq. 7) backed by a precomputed
//! [`NodeCostTable`].

use kanon_core::hierarchy::{Hierarchy, NodeId};
use kanon_core::record::GeneralizedRecord;
use kanon_core::table::Table;
use kanon_measures::NodeCostTable;

/// Per-attribute join/cost kernel: the hierarchy, its dense pairwise join
/// table (when built under the node budget — see
/// [`Hierarchy::rebuild_join_table`]), and the measure's dense cost row.
/// With the table present, `join ∘ cost` for one attribute is two array
/// loads; without it, the join falls back to the parent-pointer climb.
#[derive(Clone, Copy)]
struct AttrKernel<'a> {
    hierarchy: &'a Hierarchy,
    /// Dense `num_nodes × num_nodes` LCA table, row-major, or `None`
    /// when the hierarchy exceeded its join-table node budget.
    join_table: Option<&'a [u32]>,
    /// Stride of `join_table` rows (= the hierarchy's node count).
    num_nodes: usize,
    /// `cost_row[node.index()]` = measure cost of that node.
    cost_row: &'a [f64],
}

impl<'a> AttrKernel<'a> {
    #[inline]
    fn join(&self, a: NodeId, b: NodeId) -> NodeId {
        match self.join_table {
            Some(t) => {
                kanon_obs::count(kanon_obs::Counter::JoinTableHits, 1);
                NodeId(t[a.index() * self.num_nodes + b.index()])
            }
            None => {
                kanon_obs::count(kanon_obs::Counter::ClimbFallbackHits, 1);
                self.hierarchy.join_uncached(a, b)
            }
        }
    }

    #[inline]
    fn leaf(&self, v: kanon_core::domain::ValueId) -> NodeId {
        self.hierarchy.leaf(v)
    }

    #[inline]
    fn cost(&self, n: NodeId) -> f64 {
        self.cost_row[n.index()]
    }
}

/// Borrowed bundle of everything the algorithms need to evaluate cluster
/// costs: the original table (for record values), its schema, and the
/// measure's node costs — plus a per-attribute `AttrKernel` cache that
/// turns the hot `join`/`cost` pair into O(1) array loads.
#[derive(Clone)]
pub struct CostContext<'a> {
    /// The original table `D`.
    pub table: &'a Table,
    /// Precomputed per-node measure costs over `D`.
    pub costs: &'a NodeCostTable,
    /// One kernel per attribute, resolved once at construction.
    attrs: Vec<AttrKernel<'a>>,
}

impl<'a> CostContext<'a> {
    /// Creates a context. The cost table must have been computed over a
    /// table with the same schema (same attribute count is asserted).
    pub fn new(table: &'a Table, costs: &'a NodeCostTable) -> Self {
        assert_eq!(
            table.num_attrs(),
            costs.num_attrs(),
            "cost table and table disagree on attribute count"
        );
        let schema = table.schema();
        let attrs = (0..schema.num_attrs())
            .map(|j| {
                let h = schema.attr(j).hierarchy();
                AttrKernel {
                    hierarchy: h,
                    join_table: h.join_table_slice(),
                    num_nodes: h.num_nodes(),
                    cost_row: costs.attr_costs(j),
                }
            })
            .collect();
        CostContext {
            table,
            costs,
            attrs,
        }
    }

    /// Number of attributes `r`.
    #[inline]
    pub fn num_attrs(&self) -> usize {
        self.table.num_attrs()
    }

    /// Number of records `n`.
    #[inline]
    pub fn num_rows(&self) -> usize {
        self.table.num_rows()
    }

    /// Leaf nodes of a row (the closure of a singleton cluster).
    pub fn leaf_nodes(&self, row: usize) -> Vec<NodeId> {
        let rec = self.table.row(row);
        self.attrs
            .iter()
            .enumerate()
            .map(|(j, k)| k.leaf(rec.get(j)))
            .collect()
    }

    /// Joins row `row` into the closure `acc` in place.
    pub fn join_row_into(&self, acc: &mut [NodeId], row: usize) {
        let rec = self.table.row(row);
        for (j, (slot, k)) in acc.iter_mut().zip(&self.attrs).enumerate() {
            *slot = k.join(*slot, k.leaf(rec.get(j)));
        }
    }

    /// Joins closure `other` into `acc` in place.
    pub fn join_nodes_into(&self, acc: &mut [NodeId], other: &[NodeId]) {
        for ((slot, &o), k) in acc.iter_mut().zip(other).zip(&self.attrs) {
            *slot = k.join(*slot, o);
        }
    }

    /// Cost of a closure: `d(S) = c(closure(S))`.
    #[inline]
    pub fn cost(&self, nodes: &[NodeId]) -> f64 {
        self.costs.nodes_cost(nodes)
    }

    /// Cost of the join of two closures without materializing it.
    pub fn join_cost(&self, a: &[NodeId], b: &[NodeId]) -> f64 {
        let mut sum = 0.0;
        for ((&na, &nb), k) in a.iter().zip(b).zip(&self.attrs) {
            sum += k.cost(k.join(na, nb));
        }
        sum / self.num_attrs() as f64
    }

    /// Cost of the join of a closure with one row without materializing it.
    pub fn join_row_cost(&self, a: &[NodeId], row: usize) -> f64 {
        let rec = self.table.row(row);
        let mut sum = 0.0;
        for (j, (&na, k)) in a.iter().zip(&self.attrs).enumerate() {
            sum += k.cost(k.join(na, k.leaf(rec.get(j))));
        }
        sum / self.num_attrs() as f64
    }

    /// Pairwise record cost `d({R_i, R_j})` — the edge weight used by
    /// Algorithm 3 and the forest baseline.
    pub fn pair_cost(&self, i: usize, j: usize) -> f64 {
        kanon_obs::count(kanon_obs::Counter::PairCostEvals, 1);
        let (ri, rj) = (self.table.row(i), self.table.row(j));
        let mut sum = 0.0;
        for (a, k) in self.attrs.iter().enumerate() {
            let n = k.join(k.leaf(ri.get(a)), k.leaf(rj.get(a)));
            sum += k.cost(n);
        }
        sum / self.num_attrs() as f64
    }

    /// Closure of an explicit row set (panics on empty input).
    pub fn closure_of(&self, rows: &[u32]) -> Vec<NodeId> {
        let mut acc = self.leaf_nodes(rows[0] as usize);
        for &row in &rows[1..] {
            self.join_row_into(&mut acc, row as usize);
        }
        acc
    }

    /// Wraps a closure node vector into a [`GeneralizedRecord`].
    pub fn to_record(&self, nodes: &[NodeId]) -> GeneralizedRecord {
        GeneralizedRecord::new(nodes.iter().copied())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kanon_core::record::Record;
    use kanon_core::schema::SchemaBuilder;
    use kanon_measures::LmMeasure;
    use std::sync::Arc;

    fn setup() -> (Table, NodeCostTable) {
        let s = SchemaBuilder::new()
            .categorical_with_groups("c", ["a", "b", "c", "d"], &[&["a", "b"], &["c", "d"]])
            .categorical("x", ["p", "q"])
            .build_shared()
            .unwrap();
        let t = Table::new(
            Arc::clone(&s),
            vec![
                Record::from_raw([0, 0]),
                Record::from_raw([1, 0]),
                Record::from_raw([2, 1]),
                Record::from_raw([3, 1]),
            ],
        )
        .unwrap();
        let c = NodeCostTable::compute(&t, &LmMeasure);
        (t, c)
    }

    #[test]
    fn singleton_cost_zero() {
        let (t, c) = setup();
        let ctx = CostContext::new(&t, &c);
        for i in 0..4 {
            let nodes = ctx.leaf_nodes(i);
            assert_eq!(ctx.cost(&nodes), 0.0);
        }
    }

    #[test]
    fn pair_cost_symmetric_and_matches_closure() {
        let (t, c) = setup();
        let ctx = CostContext::new(&t, &c);
        for i in 0..4 {
            for j in 0..4 {
                assert_eq!(ctx.pair_cost(i, j), ctx.pair_cost(j, i));
                let closure = ctx.closure_of(&[i as u32, j as u32]);
                assert!((ctx.pair_cost(i, j) - ctx.cost(&closure)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn join_costs_agree_with_materialized_joins() {
        let (t, c) = setup();
        let ctx = CostContext::new(&t, &c);
        let a = ctx.closure_of(&[0, 1]);
        let b = ctx.closure_of(&[2, 3]);
        let mut u = a.clone();
        ctx.join_nodes_into(&mut u, &b);
        assert!((ctx.join_cost(&a, &b) - ctx.cost(&u)).abs() < 1e-12);
        let mut ar = a.clone();
        ctx.join_row_into(&mut ar, 2);
        assert!((ctx.join_row_cost(&a, 2) - ctx.cost(&ar)).abs() < 1e-12);
    }

    #[test]
    fn lm_pair_cost_values() {
        let (t, c) = setup();
        let ctx = CostContext::new(&t, &c);
        // Rows 0,1 share x=p and group {a,b}: LM = ((2−1)/3 + 0)/2 = 1/6.
        assert!((ctx.pair_cost(0, 1) - 1.0 / 6.0).abs() < 1e-12);
        // Rows 0,2: attr c generalizes to root (3/3), x to root (1/1):
        // LM = (1 + 1)/2 = 1.
        assert!((ctx.pair_cost(0, 2) - 1.0).abs() < 1e-12);
    }
}
