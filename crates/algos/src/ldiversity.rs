//! ℓ-diverse k-anonymization — the extension the paper defers to future
//! work ("we believe ℓ-diversity fits also in our framework", Sec. II).
//!
//! The agglomerative machinery of Algorithm 1 adapts directly: a cluster
//! only *matures* when it both reaches size k **and** covers at least ℓ
//! distinct values of the sensitive attribute, so every equivalence class
//! of the output is simultaneously k-anonymous and distinct-ℓ-diverse.
//! Feasibility requires ℓ not to exceed the number of distinct sensitive
//! values, and no sensitive value may occur in more than ⌈n/ℓ⌉ records —
//! the standard eligibility condition; we check the first directly and
//! surface the second through a final validation pass.

use crate::agglomerative::KAnonOutput;
use crate::cost::CostContext;
use crate::distance::ClusterDistance;
use kanon_core::cluster::Clustering;
use kanon_core::error::{CoreError, Result};
use kanon_core::hierarchy::NodeId;
use kanon_core::table::Table;
use kanon_measures::NodeCostTable;
use std::collections::BTreeMap;

/// Configuration for [`l_diverse_k_anonymize`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LDiverseConfig {
    /// The anonymity parameter `k ≥ 1`.
    pub k: usize,
    /// The diversity parameter `ℓ ≥ 1` (distinct ℓ-diversity).
    pub l: usize,
    /// The cluster distance function.
    pub distance: ClusterDistance,
}

impl LDiverseConfig {
    /// k-anonymity + distinct-ℓ-diversity with the default distance (D3).
    pub fn new(k: usize, l: usize) -> Self {
        LDiverseConfig {
            k,
            l,
            distance: ClusterDistance::default(),
        }
    }
}

/// One working cluster with sensitive-value counts.
#[derive(Debug, Clone)]
struct Cluster {
    members: Vec<u32>,
    nodes: Vec<NodeId>,
    cost: f64,
    /// Sensitive value → count within the cluster.
    sensitive: BTreeMap<u32, u32>,
}

impl Cluster {
    fn singleton(ctx: &CostContext<'_>, row: u32, sensitive: &[u32]) -> Self {
        let nodes = ctx.leaf_nodes(row as usize);
        let cost = ctx.cost(&nodes);
        let mut map = BTreeMap::new();
        map.insert(sensitive[row as usize], 1);
        Cluster {
            members: vec![row],
            nodes,
            cost,
            sensitive: map,
        }
    }

    fn size(&self) -> usize {
        self.members.len()
    }

    fn distinct(&self) -> usize {
        self.sensitive.len()
    }
}

/// Agglomerative k-anonymization with a distinct-ℓ-diversity maturity
/// condition: clusters keep merging until they have ≥ k members *and*
/// ≥ ℓ distinct sensitive values.
///
/// `sensitive[i]` is the sensitive value of row `i` (any dense labelling;
/// e.g. the CMC contraceptive-method class).
pub fn l_diverse_k_anonymize(
    table: &Table,
    costs: &NodeCostTable,
    sensitive: &[u32],
    cfg: &LDiverseConfig,
) -> Result<KAnonOutput> {
    let n = table.num_rows();
    if cfg.k == 0 || cfg.k > n {
        return Err(CoreError::InvalidK { k: cfg.k, n });
    }
    if sensitive.len() != n {
        return Err(CoreError::RowCountMismatch {
            left: n,
            right: sensitive.len(),
        });
    }
    let total_distinct = {
        let mut vals: Vec<u32> = sensitive.to_vec();
        vals.sort_unstable();
        vals.dedup();
        vals.len()
    };
    if cfg.l == 0 || cfg.l > total_distinct {
        return Err(CoreError::InvalidK {
            k: cfg.l,
            n: total_distinct,
        });
    }
    let ctx = CostContext::new(table, costs);

    // Active clusters in a slab; simple global-scan selection (the
    // ℓ-diverse variant is an extension, clarity over micro-optimality).
    let mut slots: Vec<Option<Cluster>> = (0..n)
        .map(|i| Some(Cluster::singleton(&ctx, i as u32, sensitive)))
        .collect();
    let mut active: Vec<usize> = (0..n).collect();
    let mut done: Vec<Cluster> = Vec::new();

    let dist = |a: &Cluster, b: &Cluster, ctx: &CostContext<'_>| -> f64 {
        let cost_u = ctx.join_cost(&a.nodes, &b.nodes);
        cfg.distance.eval_symmetric(
            a.size(),
            a.cost,
            b.size(),
            b.cost,
            a.size() + b.size(),
            cost_u,
        )
    };

    let mature = |c: &Cluster| -> bool { c.size() >= cfg.k && c.distinct() >= cfg.l };

    // Singletons can already be mature when k = 1 = ℓ.
    if cfg.k == 1 && cfg.l == 1 {
        let clustering = Clustering::from_assignment((0..n as u32).collect())?;
        let gtable = clustering.to_generalized_table(table)?;
        let loss = costs.table_loss(&gtable);
        return Ok(KAnonOutput {
            clustering,
            table: gtable,
            loss,
        });
    }

    while active.len() > 1 {
        // Closest pair among active clusters (quadratic scan).
        let mut best: Option<(usize, usize, f64)> = None;
        for x in 0..active.len() {
            for y in (x + 1)..active.len() {
                let (i, j) = (active[x], active[y]);
                // kanon-lint: allow(L006) active slots are live by construction
                let d = dist(slots[i].as_ref().unwrap(), slots[j].as_ref().unwrap(), &ctx);
                let better = match best {
                    None => true,
                    Some((.., bd)) => d.total_cmp(&bd).is_lt(),
                };
                if better {
                    best = Some((i, j, d));
                }
            }
        }
        // kanon-lint: allow(L006) the merge loop requires >= 2 active clusters
        let (i, j, _) = best.expect("≥ 2 active clusters");
        let a = slots[i].take().unwrap(); // kanon-lint: allow(L006) best indexes live slots
        let b = slots[j].take().unwrap(); // kanon-lint: allow(L006) best indexes live slots
        active.retain(|&s| s != i && s != j);

        let mut merged = {
            let mut members = a.members;
            members.extend_from_slice(&b.members);
            members.sort_unstable();
            let mut nodes = a.nodes;
            ctx.join_nodes_into(&mut nodes, &b.nodes);
            let cost = ctx.cost(&nodes);
            let mut sensitive_counts = a.sensitive;
            for (v, c) in b.sensitive {
                *sensitive_counts.entry(v).or_insert(0) += c;
            }
            Cluster {
                members,
                nodes,
                cost,
                sensitive: sensitive_counts,
            }
        };

        if mature(&merged) {
            merged.members.sort_unstable();
            done.push(merged);
        } else {
            let slot = slots.len();
            slots.push(Some(merged));
            active.push(slot);
        }
    }

    // Leftover cluster: distribute its records over mature clusters.
    if let Some(&slot) = active.first() {
        // kanon-lint: allow(L006) the first active slot is live
        let leftover = slots[slot].take().unwrap();
        if done.is_empty() {
            // No cluster ever matured — infeasible combination.
            return Err(CoreError::InvalidClustering(format!(
                "cannot satisfy k = {} with ℓ = {} on {} records",
                cfg.k, cfg.l, n
            )));
        }
        for &row in &leftover.members {
            let single = Cluster::singleton(&ctx, row, sensitive);
            let mut best = 0usize;
            let mut best_d = f64::INFINITY;
            for (ci, c) in done.iter().enumerate() {
                let d = dist(&single, c, &ctx);
                if d.total_cmp(&best_d).is_lt() {
                    best_d = d;
                    best = ci;
                }
            }
            let c = &mut done[best];
            c.members.push(row);
            c.members.sort_unstable();
            ctx.join_row_into(&mut c.nodes, row as usize);
            c.cost = ctx.cost(&c.nodes);
            *c.sensitive.entry(sensitive[row as usize]).or_insert(0) += 1;
        }
    }

    let clusters: Vec<Vec<u32>> = done.into_iter().map(|c| c.members).collect();
    let clustering = Clustering::from_clusters(n, clusters)?;
    let gtable = clustering.to_generalized_table(table)?;
    let loss = costs.table_loss(&gtable);
    Ok(KAnonOutput {
        clustering,
        table: gtable,
        loss,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use kanon_core::record::Record;
    use kanon_core::schema::SchemaBuilder;
    use kanon_measures::EntropyMeasure;
    use std::sync::Arc;

    fn setup(n: usize) -> (Table, Vec<u32>, NodeCostTable) {
        let s = SchemaBuilder::new()
            .categorical_with_groups(
                "c",
                ["a", "b", "c", "d", "e", "f"],
                &[&["a", "b"], &["c", "d"], &["e", "f"]],
            )
            .build_shared()
            .unwrap();
        let rows = (0..n).map(|i| Record::from_raw([(i % 6) as u32])).collect();
        let t = Table::new(Arc::clone(&s), rows).unwrap();
        // Sensitive values alternate 0/1/2 — diversity requires mixing.
        let sensitive: Vec<u32> = (0..n).map(|i| (i % 3) as u32).collect();
        let costs = NodeCostTable::compute(&t, &EntropyMeasure);
        (t, sensitive, costs)
    }

    fn class_diversity(out: &KAnonOutput, sensitive: &[u32]) -> usize {
        out.clustering
            .clusters()
            .iter()
            .map(|c| {
                let mut vals: Vec<u32> = c.iter().map(|&i| sensitive[i as usize]).collect();
                vals.sort_unstable();
                vals.dedup();
                vals.len()
            })
            .min()
            .unwrap()
    }

    #[test]
    fn output_is_k_anonymous_and_l_diverse() {
        let (t, sensitive, costs) = setup(18);
        for (k, l) in [(2, 2), (3, 2), (3, 3), (4, 2)] {
            let out =
                l_diverse_k_anonymize(&t, &costs, &sensitive, &LDiverseConfig::new(k, l)).unwrap();
            assert!(out.clustering.min_cluster_size() >= k, "k={k} l={l}");
            assert!(class_diversity(&out, &sensitive) >= l, "k={k} l={l}");
        }
    }

    #[test]
    fn diversity_may_cost_extra_loss() {
        // Without diversity, identical-value clusters are free; forcing
        // ℓ ≥ 2 must mix them, so loss can only grow.
        let (t, _, costs) = setup(12);
        // Sensitive values aligned with the attribute: cluster {a,a} would
        // be homogeneous.
        let sensitive: Vec<u32> = (0..12).map(|i| (i % 6) as u32 / 2).collect();
        let plain = crate::agglomerative::agglomerative_k_anonymize(
            &t,
            &costs,
            &crate::agglomerative::AgglomerativeConfig::new(2),
        )
        .unwrap();
        let diverse =
            l_diverse_k_anonymize(&t, &costs, &sensitive, &LDiverseConfig::new(2, 2)).unwrap();
        assert!(diverse.loss >= plain.loss - 1e-12);
        assert!(class_diversity(&diverse, &sensitive) >= 2);
    }

    #[test]
    fn infeasible_l_rejected() {
        let (t, _, costs) = setup(12);
        let homogeneous = vec![7u32; 12];
        assert!(
            l_diverse_k_anonymize(&t, &costs, &homogeneous, &LDiverseConfig::new(2, 2)).is_err()
        );
    }

    #[test]
    fn k1_l1_is_identity() {
        let (t, sensitive, costs) = setup(12);
        let out =
            l_diverse_k_anonymize(&t, &costs, &sensitive, &LDiverseConfig::new(1, 1)).unwrap();
        assert_eq!(out.loss, 0.0);
    }

    #[test]
    fn length_mismatch_rejected() {
        let (t, _, costs) = setup(12);
        assert!(l_diverse_k_anonymize(&t, &costs, &[0, 1], &LDiverseConfig::new(2, 2)).is_err());
    }
}
