//! ℓ-diverse k-anonymization — the extension the paper defers to future
//! work ("we believe ℓ-diversity fits also in our framework", Sec. II).
//!
//! The agglomerative machinery of Algorithm 1 adapts directly: a cluster
//! only *matures* when it both reaches size k **and** covers at least ℓ
//! distinct values of the sensitive attribute, so every equivalence class
//! of the output is simultaneously k-anonymous and distinct-ℓ-diverse.
//! Feasibility requires ℓ not to exceed the number of distinct sensitive
//! values, and no sensitive value may occur in more than ⌈n/ℓ⌉ records —
//! the standard eligibility condition; we check the first directly and
//! surface the second through a final validation pass.
//!
//! **Implementation note.** The merge loop runs on the shared
//! closest-pair engine ([`crate::engine`]) — the same per-cluster
//! nearest-neighbour cache as Algorithms 1/2, so a run is O(n²) expected
//! instead of the O(n³) all-pairs rescan the first version of this
//! module performed on every merge. That first version is preserved
//! verbatim as [`l_diverse_reference`]: the determinism suite proves the
//! engine-based run byte-identical to it, and the scaling bench uses it
//! as the n³ baseline.

use crate::agglomerative::KAnonOutput;
use crate::cost::{CostContext, SigArena};
use crate::distance::ClusterDistance;
use crate::engine::{self, ClusterPolicy, PackedEval};
use kanon_core::cluster::Clustering;
use kanon_core::error::{CoreError, Result};
use kanon_core::hierarchy::NodeId;
use kanon_core::table::Table;
use kanon_measures::NodeCostTable;
use std::collections::BTreeMap;

/// Configuration for [`l_diverse_k_anonymize`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LDiverseConfig {
    /// The anonymity parameter `k ≥ 1`.
    pub k: usize,
    /// The diversity parameter `ℓ ≥ 1` (distinct ℓ-diversity).
    pub l: usize,
    /// The cluster distance function.
    pub distance: ClusterDistance,
}

impl LDiverseConfig {
    /// k-anonymity + distinct-ℓ-diversity with the default distance (D3).
    pub fn new(k: usize, l: usize) -> Self {
        LDiverseConfig {
            k,
            l,
            distance: ClusterDistance::default(),
        }
    }
}

/// One working cluster with sensitive-value counts.
#[derive(Debug, Clone)]
struct Cluster {
    members: Vec<u32>,
    nodes: Vec<NodeId>,
    cost: f64,
    /// Sensitive value → count within the cluster.
    sensitive: BTreeMap<u32, u32>,
}

impl Cluster {
    fn singleton(ctx: &CostContext<'_>, row: u32, sensitive: &[u32]) -> Self {
        let nodes = ctx.leaf_nodes(row as usize);
        let cost = ctx.cost(&nodes);
        let mut map = BTreeMap::new();
        map.insert(sensitive[row as usize], 1);
        Cluster {
            members: vec![row],
            nodes,
            cost,
            sensitive: map,
        }
    }

    fn size(&self) -> usize {
        self.members.len()
    }

    fn distinct(&self) -> usize {
        self.sensitive.len()
    }
}

/// The ℓ-diversity policy for the shared closest-pair engine: the same
/// closure-cost distance as Algorithm 1, plus the sensitive-value fold on
/// merge and the two-part maturity condition (size ≥ k ∧ distinct ≥ ℓ).
struct LDivPolicy<'c, 'a> {
    ctx: &'c CostContext<'a>,
    distance: ClusterDistance,
    k: usize,
    l: usize,
}

impl LDivPolicy<'_, '_> {
    fn dist(&self, a: &Cluster, b: &Cluster) -> f64 {
        let cost_u = self.ctx.join_cost(&a.nodes, &b.nodes);
        self.distance.eval_symmetric(
            a.size(),
            a.cost,
            b.size(),
            b.cost,
            a.size() + b.size(),
            cost_u,
        )
    }
}

impl ClusterPolicy for LDivPolicy<'_, '_> {
    type Payload = Cluster;
    const FAIL_POINT: &'static str = "algos/ldiversity/merge";

    fn distance(&self, a: &Cluster, b: &Cluster) -> f64 {
        self.dist(a, b)
    }

    fn merge(&self, a: Cluster, b: Cluster) -> Cluster {
        let mut members = a.members;
        members.extend_from_slice(&b.members);
        members.sort_unstable();
        let mut nodes = a.nodes;
        self.ctx.join_nodes_into(&mut nodes, &b.nodes);
        let cost = self.ctx.cost(&nodes);
        let mut sensitive = a.sensitive;
        for (v, c) in b.sensitive {
            *sensitive.entry(v).or_insert(0) += c;
        }
        Cluster {
            members,
            nodes,
            cost,
            sensitive,
        }
    }

    fn is_mature(&self, c: &Cluster) -> bool {
        c.size() >= self.k && c.distinct() >= self.l
    }

    fn packed(&self) -> Option<&dyn PackedEval<Cluster>> {
        Some(self)
    }
}

impl PackedEval<Cluster> for LDivPolicy<'_, '_> {
    fn new_arena(&self, capacity: usize) -> SigArena {
        SigArena::with_capacity(self.ctx.num_attrs(), capacity)
    }

    fn store(&self, c: &Cluster, slot: usize, arena: &mut SigArena) {
        arena.store(slot, &c.nodes, c.size(), c.cost);
    }

    // Bit-identical to `dist` above: `arena_join_cost` runs the same
    // fused probes in the same attribute order as `join_cost`, and the
    // size/cost operands are the very values `store` copied out of the
    // payload (the sensitive-value map plays no part in distances).
    fn dist(&self, arena: &SigArena, a: usize, b: usize) -> f64 {
        let cost_u = self.ctx.arena_join_cost(arena, a, b);
        self.distance.eval_symmetric(
            arena.size(a),
            arena.cost(a),
            arena.size(b),
            arena.cost(b),
            arena.size(a) + arena.size(b),
            cost_u,
        )
    }
}

/// Validates `(k, ℓ, sensitive)` against the table and returns the number
/// of distinct sensitive values.
fn validate(table: &Table, sensitive: &[u32], cfg: &LDiverseConfig) -> Result<usize> {
    let n = table.num_rows();
    if cfg.k == 0 || cfg.k > n {
        return Err(CoreError::InvalidK { k: cfg.k, n });
    }
    if sensitive.len() != n {
        return Err(CoreError::RowCountMismatch {
            left: n,
            right: sensitive.len(),
        });
    }
    let total_distinct = {
        let mut vals: Vec<u32> = sensitive.to_vec();
        vals.sort_unstable();
        vals.dedup();
        vals.len()
    };
    if cfg.l == 0 || cfg.l > total_distinct {
        return Err(CoreError::InvalidL {
            l: cfg.l,
            distinct: total_distinct,
        });
    }
    Ok(total_distinct)
}

/// Distributes the records of a single leftover (immature) cluster over
/// the mature clusters, each record joining the cluster minimizing
/// `dist({R}, S)`. Pushes are sequential (each push updates the target's
/// closure and cost, which the next record's choice sees), but member
/// lists are only re-sorted once per *touched* cluster at the end —
/// member order feeds neither the distance nor the closure, so sorting
/// lazily is observably identical to sorting after every push.
fn distribute_leftover(
    ctx: &CostContext<'_>,
    cfg: &LDiverseConfig,
    sensitive: &[u32],
    done: &mut [Cluster],
    leftover: &Cluster,
) -> Result<()> {
    if done.is_empty() {
        // No cluster ever matured — infeasible combination.
        return Err(CoreError::InvalidClustering(format!(
            "cannot satisfy k = {} with \u{2113} = {} on {} records",
            cfg.k,
            cfg.l,
            sensitive.len()
        )));
    }
    let mut touched = vec![false; done.len()];
    for &row in &leftover.members {
        let single = Cluster::singleton(ctx, row, sensitive);
        let mut best = 0usize;
        let mut best_d = f64::INFINITY;
        for (ci, c) in done.iter().enumerate() {
            let cost_u = ctx.join_cost(&single.nodes, &c.nodes);
            let d = cfg.distance.eval_symmetric(
                single.size(),
                single.cost,
                c.size(),
                c.cost,
                single.size() + c.size(),
                cost_u,
            );
            if d.total_cmp(&best_d).is_lt() {
                best_d = d;
                best = ci;
            }
        }
        let c = &mut done[best];
        c.members.push(row);
        ctx.join_row_into(&mut c.nodes, row as usize);
        c.cost = ctx.cost(&c.nodes);
        *c.sensitive.entry(sensitive[row as usize]).or_insert(0) += 1;
        touched[best] = true;
    }
    for (c, _) in done.iter_mut().zip(&touched).filter(|(_, &t)| t) {
        c.members.sort_unstable();
    }
    Ok(())
}

/// Agglomerative k-anonymization with a distinct-ℓ-diversity maturity
/// condition: clusters keep merging until they have ≥ k members *and*
/// ≥ ℓ distinct sensitive values.
///
/// `sensitive[i]` is the sensitive value of row `i` (any dense labelling;
/// e.g. the CMC contraceptive-method class).
///
/// Panicking wrapper over [`crate::try_l_diverse_k_anonymize`]: domain
/// failures come back as `CoreError`; isolated worker panics and injected
/// faults are re-raised as a `KanonError` panic payload. When a work
/// budget (`KANON_WORK_BUDGET` / `kanon_obs::with_work_budget`) is
/// exhausted mid-run, the valid best-effort result is returned silently —
/// use the `try_` form to observe the `BudgetExhausted` marker.
pub fn l_diverse_k_anonymize(
    table: &Table,
    costs: &NodeCostTable,
    sensitive: &[u32],
    cfg: &LDiverseConfig,
) -> Result<KAnonOutput> {
    match crate::try_l_diverse_k_anonymize(table, costs, sensitive, cfg) {
        Ok(out) => Ok(out.into_inner()),
        Err(kanon_core::KanonError::Core(e)) => Err(e),
        Err(other) => std::panic::panic_any(other),
    }
}

/// ℓ-diverse implementation with budget-aware graceful degradation.
pub(crate) fn ldiversity_impl(
    table: &Table,
    costs: &NodeCostTable,
    sensitive: &[u32],
    cfg: &LDiverseConfig,
) -> Result<crate::Budgeted<KAnonOutput>> {
    let n = table.num_rows();
    validate(table, sensitive, cfg)?;
    let _span = kanon_obs::span("ldiversity");
    let ctx = CostContext::new(table, costs);

    // Singletons are already mature when k = 1 = ℓ.
    if cfg.k == 1 && cfg.l == 1 {
        let clustering = Clustering::from_assignment((0..n as u32).collect())?;
        let gtable = clustering.to_generalized_table(table)?;
        let loss = costs.table_loss(&gtable);
        return Ok(crate::Budgeted::Complete(KAnonOutput {
            clustering,
            table: gtable,
            loss,
        }));
    }

    let singles: Vec<Cluster> = (0..n)
        .map(|i| Cluster::singleton(&ctx, i as u32, sensitive))
        .collect();
    let policy = LDivPolicy {
        ctx: &ctx,
        distance: cfg.distance,
        k: cfg.k,
        l: cfg.l,
    };
    let outcome = engine::run(&policy, singles);
    let mut done = outcome.done;
    let mut remaining = outcome.remaining;
    let exhausted = outcome.exhausted;

    // Graceful degradation: the budget tripped with several immature
    // clusters outstanding. Combine them all into one cluster (ascending
    // first-member order, deterministic). If the combined cluster matures
    // it is done; otherwise it becomes the single leftover handled below.
    // The output stays *valid*: when nothing matured, the combined
    // cluster holds all n records — n ≥ k members, all sensitive values —
    // so it matures; and distributing leftover records into mature
    // clusters can only grow their sizes and sensitive-value sets.
    if exhausted.is_some() && remaining.len() > 1 {
        remaining.sort_by_key(|c| c.members[0]);
        let mut combined = remaining.swap_remove(0);
        for c in remaining.drain(..) {
            combined.members.extend_from_slice(&c.members);
            ctx.join_nodes_into(&mut combined.nodes, &c.nodes);
            for (v, cnt) in c.sensitive {
                *combined.sensitive.entry(v).or_insert(0) += cnt;
            }
        }
        combined.members.sort_unstable();
        combined.cost = ctx.cost(&combined.nodes);
        if policy.is_mature(&combined) {
            done.push(combined);
        } else {
            remaining.push(combined);
        }
    }

    // Leftover cluster: distribute its records over mature clusters.
    if let Some(leftover) = remaining.pop() {
        distribute_leftover(&ctx, cfg, sensitive, &mut done, &leftover)?;
    }

    let clusters: Vec<Vec<u32>> = done.into_iter().map(|c| c.members).collect();
    let clustering = Clustering::from_clusters(n, clusters)?;
    let gtable = clustering.to_generalized_table(table)?;
    let loss = costs.table_loss(&gtable);
    let output = KAnonOutput {
        clustering,
        table: gtable,
        loss,
    };
    Ok(match exhausted {
        None => crate::Budgeted::Complete(output),
        Some((budget, spent)) => crate::Budgeted::BudgetExhausted {
            best_so_far: output,
            budget,
            spent,
        },
    })
}

/// The original all-pairs implementation, kept verbatim as the byte-level
/// reference for the engine-based run and as the O(n³) baseline of the
/// ℓ-diversity scaling bench (it re-scans every active pair on every
/// merge). Counts [`kanon_obs::Counter::ClusterDistEvals`] so the bench
/// can embed the n³-vs-n² evidence. Not part of the supported API.
#[doc(hidden)]
pub fn l_diverse_reference(
    table: &Table,
    costs: &NodeCostTable,
    sensitive: &[u32],
    cfg: &LDiverseConfig,
) -> Result<KAnonOutput> {
    let n = table.num_rows();
    validate(table, sensitive, cfg)?;
    let ctx = CostContext::new(table, costs);

    let mut slots: Vec<Option<Cluster>> = (0..n)
        .map(|i| Some(Cluster::singleton(&ctx, i as u32, sensitive)))
        .collect();
    let mut active: Vec<usize> = (0..n).collect();
    let mut done: Vec<Cluster> = Vec::new();

    let dist = |a: &Cluster, b: &Cluster, ctx: &CostContext<'_>| -> f64 {
        kanon_obs::count(kanon_obs::Counter::ClusterDistEvals, 1);
        let cost_u = ctx.join_cost(&a.nodes, &b.nodes);
        cfg.distance.eval_symmetric(
            a.size(),
            a.cost,
            b.size(),
            b.cost,
            a.size() + b.size(),
            cost_u,
        )
    };

    let mature = |c: &Cluster| -> bool { c.size() >= cfg.k && c.distinct() >= cfg.l };

    if cfg.k == 1 && cfg.l == 1 {
        let clustering = Clustering::from_assignment((0..n as u32).collect())?;
        let gtable = clustering.to_generalized_table(table)?;
        let loss = costs.table_loss(&gtable);
        return Ok(KAnonOutput {
            clustering,
            table: gtable,
            loss,
        });
    }

    while active.len() > 1 {
        // Closest pair among active clusters (quadratic scan per merge).
        let mut best: Option<(usize, usize, f64)> = None;
        for x in 0..active.len() {
            for y in (x + 1)..active.len() {
                let (i, j) = (active[x], active[y]);
                // kanon-lint: allow(L006) active slots are live by construction
                let d = dist(slots[i].as_ref().unwrap(), slots[j].as_ref().unwrap(), &ctx);
                let better = match best {
                    None => true,
                    Some((.., bd)) => d.total_cmp(&bd).is_lt(),
                };
                if better {
                    best = Some((i, j, d));
                }
            }
        }
        // kanon-lint: allow(L006) the merge loop requires >= 2 active clusters
        let (i, j, _) = best.expect("≥ 2 active clusters");
        let a = slots[i].take().unwrap(); // kanon-lint: allow(L006) best indexes live slots
        let b = slots[j].take().unwrap(); // kanon-lint: allow(L006) best indexes live slots
        active.retain(|&s| s != i && s != j);

        let merged = {
            let mut members = a.members;
            members.extend_from_slice(&b.members);
            members.sort_unstable();
            let mut nodes = a.nodes;
            ctx.join_nodes_into(&mut nodes, &b.nodes);
            let cost = ctx.cost(&nodes);
            let mut sensitive_counts = a.sensitive;
            for (v, c) in b.sensitive {
                *sensitive_counts.entry(v).or_insert(0) += c;
            }
            Cluster {
                members,
                nodes,
                cost,
                sensitive: sensitive_counts,
            }
        };

        if mature(&merged) {
            done.push(merged);
        } else {
            let slot = slots.len();
            slots.push(Some(merged));
            active.push(slot);
        }
    }

    // Leftover cluster: distribute its records over mature clusters.
    if let Some(&slot) = active.first() {
        // kanon-lint: allow(L006) the first active slot is live
        let leftover = slots[slot].take().unwrap();
        if done.is_empty() {
            return Err(CoreError::InvalidClustering(format!(
                "cannot satisfy k = {} with \u{2113} = {} on {} records",
                cfg.k, cfg.l, n
            )));
        }
        for &row in &leftover.members {
            let single = Cluster::singleton(&ctx, row, sensitive);
            let mut best = 0usize;
            let mut best_d = f64::INFINITY;
            for (ci, c) in done.iter().enumerate() {
                let d = dist(&single, c, &ctx);
                if d.total_cmp(&best_d).is_lt() {
                    best_d = d;
                    best = ci;
                }
            }
            let c = &mut done[best];
            c.members.push(row);
            c.members.sort_unstable();
            ctx.join_row_into(&mut c.nodes, row as usize);
            c.cost = ctx.cost(&c.nodes);
            *c.sensitive.entry(sensitive[row as usize]).or_insert(0) += 1;
        }
    }

    let clusters: Vec<Vec<u32>> = done.into_iter().map(|c| c.members).collect();
    let clustering = Clustering::from_clusters(n, clusters)?;
    let gtable = clustering.to_generalized_table(table)?;
    let loss = costs.table_loss(&gtable);
    Ok(KAnonOutput {
        clustering,
        table: gtable,
        loss,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use kanon_core::record::Record;
    use kanon_core::schema::SchemaBuilder;
    use kanon_measures::EntropyMeasure;
    use std::sync::Arc;

    fn setup(n: usize) -> (Table, Vec<u32>, NodeCostTable) {
        let s = SchemaBuilder::new()
            .categorical_with_groups(
                "c",
                ["a", "b", "c", "d", "e", "f"],
                &[&["a", "b"], &["c", "d"], &["e", "f"]],
            )
            .build_shared()
            .unwrap();
        let rows = (0..n).map(|i| Record::from_raw([(i % 6) as u32])).collect();
        let t = Table::new(Arc::clone(&s), rows).unwrap();
        // Sensitive values alternate 0/1/2 — diversity requires mixing.
        let sensitive: Vec<u32> = (0..n).map(|i| (i % 3) as u32).collect();
        let costs = NodeCostTable::compute(&t, &EntropyMeasure);
        (t, sensitive, costs)
    }

    fn class_diversity(out: &KAnonOutput, sensitive: &[u32]) -> usize {
        out.clustering
            .clusters()
            .iter()
            .map(|c| {
                let mut vals: Vec<u32> = c.iter().map(|&i| sensitive[i as usize]).collect();
                vals.sort_unstable();
                vals.dedup();
                vals.len()
            })
            .min()
            .unwrap()
    }

    #[test]
    fn output_is_k_anonymous_and_l_diverse() {
        let (t, sensitive, costs) = setup(18);
        for (k, l) in [(2, 2), (3, 2), (3, 3), (4, 2)] {
            let out =
                l_diverse_k_anonymize(&t, &costs, &sensitive, &LDiverseConfig::new(k, l)).unwrap();
            assert!(out.clustering.min_cluster_size() >= k, "k={k} l={l}");
            assert!(class_diversity(&out, &sensitive) >= l, "k={k} l={l}");
        }
    }

    #[test]
    fn diversity_may_cost_extra_loss() {
        // Without diversity, identical-value clusters are free; forcing
        // ℓ ≥ 2 must mix them, so loss can only grow.
        let (t, _, costs) = setup(12);
        // Sensitive values aligned with the attribute: cluster {a,a} would
        // be homogeneous.
        let sensitive: Vec<u32> = (0..12).map(|i| (i % 6) as u32 / 2).collect();
        let plain = crate::agglomerative::agglomerative_k_anonymize(
            &t,
            &costs,
            &crate::agglomerative::AgglomerativeConfig::new(2),
        )
        .unwrap();
        let diverse =
            l_diverse_k_anonymize(&t, &costs, &sensitive, &LDiverseConfig::new(2, 2)).unwrap();
        assert!(diverse.loss >= plain.loss - 1e-12);
        assert!(class_diversity(&diverse, &sensitive) >= 2);
    }

    #[test]
    fn infeasible_l_rejected_with_dedicated_error() {
        // Regression: this used to come back as `InvalidK { k: l }`, so
        // the message reported ℓ as "k". It must be `InvalidL` and the
        // message must name ℓ.
        let (t, _, costs) = setup(12);
        let homogeneous = vec![7u32; 12];
        let err = l_diverse_k_anonymize(&t, &costs, &homogeneous, &LDiverseConfig::new(2, 2))
            .unwrap_err();
        assert_eq!(err, CoreError::InvalidL { l: 2, distinct: 1 });
        let msg = err.to_string();
        assert!(
            msg.contains("\u{2113}=2"),
            "message must name \u{2113}: {msg}"
        );
        assert!(
            !msg.contains("k="),
            "message must not call \u{2113} \"k\": {msg}"
        );
        // ℓ = 0 is rejected the same way.
        assert!(matches!(
            l_diverse_k_anonymize(&t, &costs, &homogeneous, &LDiverseConfig::new(2, 0)),
            Err(CoreError::InvalidL { l: 0, .. })
        ));
    }

    #[test]
    fn k1_l1_is_identity() {
        let (t, sensitive, costs) = setup(12);
        let out =
            l_diverse_k_anonymize(&t, &costs, &sensitive, &LDiverseConfig::new(1, 1)).unwrap();
        assert_eq!(out.loss, 0.0);
    }

    #[test]
    fn length_mismatch_rejected() {
        let (t, _, costs) = setup(12);
        assert!(l_diverse_k_anonymize(&t, &costs, &[0, 1], &LDiverseConfig::new(2, 2)).is_err());
    }

    #[test]
    fn matches_reference_including_leftover_distribution() {
        // Byte-level pinning of the engine-based run (with the
        // sort-once leftover distribution) against the original
        // sort-after-every-push all-pairs implementation, across sizes
        // that do and do not leave a leftover cluster. The proptest in
        // `tests/determinism.rs` extends this to random tables.
        for n in [7, 11, 12, 17, 18, 23] {
            let (t, sensitive, costs) = setup(n);
            for (k, l) in [(2, 2), (3, 2), (3, 3), (5, 2)] {
                let cfg = LDiverseConfig::new(k, l);
                let fast = l_diverse_k_anonymize(&t, &costs, &sensitive, &cfg).unwrap();
                let refr = l_diverse_reference(&t, &costs, &sensitive, &cfg).unwrap();
                assert_eq!(fast.clustering, refr.clustering, "n={n} k={k} l={l}");
                assert_eq!(
                    fast.loss.to_bits(),
                    refr.loss.to_bits(),
                    "n={n} k={k} l={l}"
                );
            }
        }
    }

    #[test]
    fn empty_done_distribution_is_a_typed_error() {
        // The `done.is_empty()` infeasible path: unreachable organically
        // (the final merge of all unmatured rows always matures — it has
        // n ≥ k members and every sensitive value), so exercise the
        // distribution helper directly. It must return the typed error,
        // not panic.
        let (t, sensitive, costs) = setup(6);
        let ctx = CostContext::new(&t, &costs);
        let cfg = LDiverseConfig::new(3, 2);
        let leftover = Cluster::singleton(&ctx, 0, &sensitive);
        let err = distribute_leftover(&ctx, &cfg, &sensitive, &mut [], &leftover).unwrap_err();
        assert!(matches!(err, CoreError::InvalidClustering(_)));
        let msg = err.to_string();
        assert!(msg.contains("k = 3"), "{msg}");
        assert!(msg.contains("\u{2113} = 2"), "{msg}");
    }

    #[test]
    fn budget_exhaustion_degrades_to_valid_output() {
        let (t, sensitive, costs) = setup(18);
        let cfg = LDiverseConfig::new(3, 2);
        let out = kanon_obs::with_work_budget(1, || {
            crate::try_l_diverse_k_anonymize(&t, &costs, &sensitive, &cfg).unwrap()
        });
        assert!(out.is_exhausted());
        let out = out.into_inner();
        assert!(out.clustering.min_cluster_size() >= 3);
        assert!(class_diversity(&out, &sensitive) >= 2);
    }
}
