//! Resident anonymization state: the base-epoch cost table, the packed
//! signature arena, the mature (published) clusters, and the pending
//! singleton pool.
//!
//! ## Incremental model
//!
//! The daemon bootstraps from a base table of at least `k` rows (first
//! consumer of the sharded pipeline). Appended rows enter as pending
//! singletons. A batch apply runs in two phases:
//!
//! 1. **Absorption sweep** — each new row is probed against every
//!    mature cluster through the packed [`SigArena`]. A row is absorbed
//!    only when joining it leaves the cluster closure *bit-identical*
//!    (fused join cost equal to the stored closure cost and per-attr
//!    closure nodes unchanged), so absorption is free: published rows
//!    never change. The sweep parallelizes past the same measured
//!    break-even as the engine's distance scans
//!    ([`kanon_algos::engine::MIN_PAR_SCAN_EVALS`]).
//! 2. **Sub-clustering** — once ≥ k rows are pending, they are
//!    clustered with the agglomerative engine on a sub-table; the
//!    resulting clusters mature. Fewer than k pending rows stay
//!    unpublished (publishing them would break k-anonymity).
//!
//! All mutation is **staged**: nothing in `ServeState` changes until a
//! batch apply has fully succeeded, so an injected fault or budget trip
//! mid-apply leaves the state exactly as before and the request can be
//! retried verbatim.
//!
//! ## Determinism across recovery
//!
//! Work budgets are *relative*: every apply runs under a fresh
//! [`kanon_obs::Collector`], so `spent_work()` starts at zero and the
//! budget recorded in the journal reproduces the identical
//! `BudgetExhausted` cut during replay regardless of process history.

use std::path::Path;

use kanon_algos::cost::{CostContext, SigArena};
use kanon_algos::engine::MIN_PAR_SCAN_EVALS;
use kanon_algos::fallible::{try_agglomerative_k_anonymize, try_sharded_k_anonymize, Budgeted};
use kanon_algos::shard::ShardConfig;
use kanon_algos::AgglomerativeConfig;
use kanon_core::cluster::Clustering;
use kanon_core::error::{KanonError, KanonResult};
use kanon_core::hierarchy::NodeId;
use kanon_core::record::Record;
use kanon_core::schema::SharedSchema;
use kanon_core::table::Table;
use kanon_data::csv::{generalized_to_csv, table_from_csv_with_policy, RowPolicy};
use kanon_measures::{EntropyMeasure, LmMeasure, NodeCostTable};
use kanon_obs::{count, Counter};

use crate::journal::{read_journal, JournalRecord, RecordKind};

/// Fail point: top of every batch apply, before any staging.
pub const POINT_BATCH_APPLY: &str = "serve/batch/apply";
/// Fail point: before each journal record is re-applied on recovery.
pub const POINT_JOURNAL_REPLAY: &str = "serve/journal/replay";
/// Fail point: before a snapshot file is written.
pub const POINT_SNAPSHOT_WRITE: &str = "serve/snapshot/write";

/// Loss-measure selection, mirroring the CLI `--measure` flag.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Measure {
    /// Entropy measure (`em`).
    Em,
    /// Loss metric (`lm`).
    Lm,
}

impl Measure {
    /// Parses the CLI spelling.
    pub fn parse(s: &str) -> Option<Measure> {
        match s {
            "em" => Some(Measure::Em),
            "lm" => Some(Measure::Lm),
            _ => None,
        }
    }

    fn compute(self, table: &Table) -> NodeCostTable {
        match self {
            Measure::Em => NodeCostTable::compute(table, &EntropyMeasure),
            Measure::Lm => NodeCostTable::compute(table, &LmMeasure),
        }
    }
}

/// Static configuration of a serve instance. Not snapshotted: a restart
/// must be launched with the same flags (the snapshot header carries
/// `k` and the measure and restore cross-checks them).
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// The anonymity parameter `k ≥ 2`.
    pub k: usize,
    /// The information-loss measure costs are computed under.
    pub measure: Measure,
    /// Bad-row policy for batch ingestion.
    pub policy: RowPolicy,
    /// Shard size cap for bootstrap/re-optimization sharded runs.
    pub shard_max: usize,
    /// Re-optimize every N applied batches (0 = only on demand).
    pub reopt_every: u64,
    /// Default ε for the ε-bounded absorption tier (0 = tier off: only
    /// the exact free-absorption criterion applies). A `BATCH
    /// absorb_epsilon=X` request overrides it per batch. See
    /// [`ServeState::apply_batch`] for the criterion.
    pub absorb_epsilon: f64,
}

/// One mature (published) cluster.
#[derive(Debug, Clone)]
struct Mature {
    /// Global row ids, ascending.
    members: Vec<u32>,
    /// Per-attribute closure nodes.
    nodes: Vec<NodeId>,
    /// Closure cost under the base-epoch cost table.
    cost: f64,
}

/// What one successful batch apply did.
#[derive(Debug, Clone, PartialEq)]
pub struct ApplyReport {
    /// Batch sequence number.
    pub seq: u64,
    /// Rows ingested (after the bad-row policy).
    pub rows_in: usize,
    /// Rows suppressed by the bad-row policy.
    pub rows_suppressed: usize,
    /// Cells generalized to root by the bad-row policy.
    pub cells_rooted: usize,
    /// Rows absorbed into mature clusters (free + ε-bounded).
    pub absorbed: usize,
    /// The subset of `absorbed` taken through the ε-bounded tier — the
    /// join changed the cluster closure (raising its loss contribution
    /// by less than the batch's ε) instead of leaving it bit-identical.
    pub absorbed_eps: usize,
    /// Rows published through new clusters this apply.
    pub clustered: usize,
    /// Rows left pending (unpublished) after the apply.
    pub pending: usize,
    /// True when the sub-clustering hit its work budget and committed a
    /// valid partial (more generalized) result.
    pub budget_exhausted: bool,
}

/// Outcome of a re-optimization pass.
#[derive(Debug, Clone, PartialEq)]
pub struct ReoptOutcome {
    /// Loss of the incremental clustering over the published rows.
    pub loss_incremental: f64,
    /// Loss of a from-scratch run over the same published rows.
    pub loss_scratch: f64,
    /// Relative drift `(incremental − scratch) / scratch` (0 when the
    /// scratch loss is 0).
    pub drift: f64,
    /// Mature clusters after adopting the from-scratch result.
    pub clusters: usize,
}

/// The daemon's resident state. All methods either succeed and commit
/// or fail and leave the state untouched.
#[derive(Debug)]
pub struct ServeState {
    schema: SharedSchema,
    cfg: ServeConfig,
    /// Base-epoch node costs: node-indexed, so valid for every
    /// same-schema table regardless of appended rows.
    costs: NodeCostTable,
    /// All rows ever accepted, base rows first, in arrival order.
    records: Vec<Record>,
    n_base: usize,
    matures: Vec<Mature>,
    /// Global ids of unpublished rows, ascending.
    pending: Vec<u32>,
    /// Packed signatures of the mature clusters (slot i ↔ matures[i]);
    /// probe slots are appended past `matures.len()` during a sweep and
    /// truncated away afterwards.
    arena: SigArena,
    seq: u64,
    batches_applied: u64,
    reopt_runs: u64,
    last_drift: Option<f64>,
}

impl ServeState {
    /// Bootstraps from a base table (≥ k rows) by running the sharded
    /// pipeline and adopting its clusters as the initial matures.
    pub fn bootstrap(table: Table, cfg: ServeConfig) -> KanonResult<ServeState> {
        if cfg.k < 2 {
            return Err(KanonError::Usage(format!(
                "serve needs k >= 2, got {}",
                cfg.k
            )));
        }
        if table.num_rows() < cfg.k {
            return Err(KanonError::Usage(format!(
                "serve needs a base table of at least k={} rows, got {}",
                cfg.k,
                table.num_rows()
            )));
        }
        let costs = cfg.measure.compute(&table);
        let out = try_sharded_k_anonymize(&table, &costs, &shard_config(&cfg))?
            .into_inner()
            .out;
        let schema = table.schema().clone();
        let n_base = table.num_rows();
        let records = table.rows().to_vec();
        let mut state = ServeState {
            schema,
            cfg,
            costs,
            records,
            n_base,
            matures: Vec::new(),
            pending: Vec::new(),
            arena: SigArena::with_capacity(0, 0),
            seq: 0,
            batches_applied: 0,
            reopt_runs: 0,
            last_drift: None,
        };
        state.adopt_clustering(&out.clustering);
        Ok(state)
    }

    /// Adopts a clustering over the *entire* current table: every row
    /// published, pending cleared, arena rebuilt.
    fn adopt_clustering(&mut self, clustering: &Clustering) {
        let table = self.table();
        let ctx = CostContext::new(&table, &self.costs);
        self.matures = clustering
            .clusters()
            .iter()
            .map(|members| {
                let mut members = members.clone();
                members.sort_unstable();
                let nodes = ctx.closure_of(&members);
                let cost = ctx.cost(&nodes);
                Mature {
                    members,
                    nodes,
                    cost,
                }
            })
            .collect();
        self.pending.clear();
        self.rebuild_arena();
    }

    fn table(&self) -> Table {
        Table::new_unchecked(self.schema.clone(), self.records.clone())
    }

    fn rebuild_arena(&mut self) {
        let mut arena = SigArena::with_capacity(self.schema.num_attrs(), self.matures.len());
        for (slot, m) in self.matures.iter().enumerate() {
            arena.store(slot, &m.nodes, m.members.len(), m.cost);
        }
        self.arena = arena;
    }

    /// Next batch sequence number (what the journal records before the
    /// matching [`apply_batch`](Self::apply_batch) call).
    pub fn next_seq(&self) -> u64 {
        self.seq + 1
    }

    /// Number of rows in the resident table.
    pub fn num_rows(&self) -> usize {
        self.records.len()
    }

    /// Number of published (mature-cluster) rows.
    pub fn published_rows(&self) -> usize {
        self.records.len() - self.pending.len()
    }

    /// Number of pending (unpublished) rows.
    pub fn pending_rows(&self) -> usize {
        self.pending.len()
    }

    /// Number of mature clusters.
    pub fn mature_clusters(&self) -> usize {
        self.matures.len()
    }

    /// Batches applied since bootstrap (journal replays included).
    pub fn batches_applied(&self) -> u64 {
        self.batches_applied
    }

    /// Re-optimization passes run since bootstrap.
    pub fn reopt_runs(&self) -> u64 {
        self.reopt_runs
    }

    /// Drift measured by the most recent re-optimization, if any.
    pub fn last_drift(&self) -> Option<f64> {
        self.last_drift
    }

    /// The configured re-optimization cadence (batches; 0 = manual).
    pub fn reopt_every(&self) -> u64 {
        self.cfg.reopt_every
    }

    /// The configured default ε of the ε-bounded absorption tier
    /// (0 = exact free absorption only).
    pub fn absorb_epsilon(&self) -> f64 {
        self.cfg.absorb_epsilon
    }

    /// Burns `seq` after a permanently failed (rolled-back) batch so it
    /// is never reused — the journal's rollback marker and any future
    /// batch record must carry distinct sequence numbers, or replay
    /// would cancel the wrong batch.
    pub fn note_rollback(&mut self, seq: u64) {
        if seq > self.seq {
            self.seq = seq;
        }
    }

    /// Applies one micro-batch of CSV rows (no header) under a relative
    /// work budget (`0` = unbounded) and an absorption tolerance
    /// `epsilon`. Staged: on any error the state is byte-identical to
    /// before the call.
    ///
    /// ## The ε-bounded absorption criterion
    ///
    /// With `epsilon == 0` the absorption sweep uses the exact free
    /// criterion: a row joins the *first* mature cluster whose closure
    /// the join leaves bit-identical. With `epsilon > 0` the sweep
    /// instead measures, for every mature cluster `C`, how much the
    /// join would raise that cluster's per-member loss:
    ///
    /// ```text
    /// raise(C, r) = cost(C ∪ {r}) − cost(C)
    /// ```
    ///
    /// A cluster is *admissible* when `raise < ε`, and `r` is absorbed
    /// into the admissible cluster with the smallest joined cost
    /// `cost(C ∪ {r})` (ties broken toward the lowest slot;
    /// [`f64::total_cmp`] throughout). A closure-preserving join
    /// raises the cluster's loss by exactly zero, so the admissible
    /// set is a superset of the free tier's for any ε > 0 — the tier
    /// differs in *placement*: instead of first fit it sends the row
    /// to the cheapest home that tolerates it, which is what bounds
    /// drift (under first fit, rows default into the widest clusters
    /// that happen to contain them). Every verdict is computed against
    /// the pre-batch state, so the sweep stays deterministic under any
    /// thread count and replays bit-identically from the journal's
    /// recorded ε.
    pub fn apply_batch(
        &mut self,
        body: &str,
        budget_units: u64,
        epsilon: f64,
    ) -> KanonResult<ApplyReport> {
        kanon_fault::fail_point!(POINT_BATCH_APPLY);
        let (batch, ingest) =
            table_from_csv_with_policy(&self.schema, body, false, self.cfg.policy)
                .map_err(KanonError::Core)?;
        let staged = if budget_units > 0 {
            kanon_obs::with_work_budget(budget_units, || self.stage_batch(&batch, epsilon))
        } else {
            self.stage_batch(&batch, epsilon)
        }?;
        // Commit point: everything below is infallible.
        let rows_in = batch.num_rows();
        self.records.extend(batch.rows().iter().cloned());
        for (slot, row) in &staged.absorbed {
            let m = &mut self.matures[*slot];
            let at = m.members.partition_point(|&x| x < *row);
            m.members.insert(at, *row);
        }
        for (slot, nodes, cost) in staged.widened {
            let m = &mut self.matures[slot];
            m.nodes = nodes;
            m.cost = cost;
        }
        self.matures.extend(staged.new_matures);
        self.pending = staged.pending;
        self.rebuild_arena();
        self.seq += 1;
        self.batches_applied += 1;
        count(Counter::ServeBatchesApplied, 1);
        count(Counter::ServeRowsIngested, rows_in as u64);
        count(Counter::ServeRowsAbsorbed, staged.absorbed.len() as u64);
        count(Counter::ServeRowsAbsorbedEps, staged.absorbed_eps as u64);
        Ok(ApplyReport {
            seq: self.seq,
            rows_in,
            rows_suppressed: ingest.suppressed_rows.len(),
            cells_rooted: ingest.rooted_cells.len(),
            absorbed: staged.absorbed.len(),
            absorbed_eps: staged.absorbed_eps,
            clustered: staged.clustered,
            pending: self.pending.len(),
            budget_exhausted: staged.budget_exhausted,
        })
    }

    /// Computes everything a batch apply will commit, without mutating
    /// `self` (the arena's probe tail is scratch and reset on entry).
    fn stage_batch(&mut self, batch: &Table, epsilon: f64) -> KanonResult<StagedApply> {
        let n0 = self.records.len();
        let mut records = self.records.clone();
        records.extend(batch.rows().iter().cloned());
        let table = Table::new_unchecked(self.schema.clone(), records);
        let ctx = CostContext::new(&table, &self.costs);

        // Absorption sweep. Probe signatures are appended to the arena
        // as slots M.., serially, then scanned read-only (possibly in
        // parallel); the tail is dropped again before this fn returns.
        let m_count = self.matures.len();
        self.arena.truncate(m_count); // defensive: drop any tail a prior unwind left behind
        let new_ids: Vec<u32> = (n0..table.num_rows()).map(|i| i as u32).collect();
        for (i, &row) in new_ids.iter().enumerate() {
            let leaves = ctx.leaf_nodes(row as usize);
            let cost = ctx.cost(&leaves);
            self.arena.store(m_count + i, &leaves, 1, cost);
        }
        let arena = &self.arena;
        let matures = &self.matures;
        let eps_on = epsilon.to_bits() != 0;
        let decide = |i: usize| -> Option<usize> {
            let row = new_ids[i];
            if eps_on {
                // ε tier: a cluster is admissible when the join raises
                // its per-member loss by less than ε — a closure-
                // preserving join raises it by exactly zero, so every
                // free home is admissible under any ε > 0. Among the
                // admissible homes the row takes the one that publishes
                // it most cheaply (smallest joined cost, ties toward
                // the lowest slot), instead of the free tier's first
                // fit. Verdicts are against the pre-batch matures, so
                // they are order-independent and parallel-safe.
                let leaves = ctx.leaf_nodes(row as usize);
                let mut best: Option<(f64, usize)> = None;
                for (s, mature) in matures.iter().enumerate() {
                    let mut joined = mature.nodes.clone();
                    ctx.join_nodes_into(&mut joined, &leaves);
                    let joined_cost = ctx.cost(&joined);
                    let raise = joined_cost - mature.cost;
                    let improves = match best {
                        None => true,
                        Some((b, _)) => joined_cost.total_cmp(&b).is_lt(),
                    };
                    if raise.total_cmp(&epsilon).is_lt() && improves {
                        best = Some((joined_cost, s));
                    }
                }
                return best.map(|(_, s)| s);
            }
            (0..m_count).find(|&s| {
                if ctx.arena_join_cost(arena, s, m_count + i).to_bits() != arena.cost(s).to_bits() {
                    return false;
                }
                // Cost equality is necessary; demand an unchanged
                // closure so absorption provably never moves published
                // output.
                let mut joined = matures[s].nodes.clone();
                ctx.join_nodes_into(&mut joined, &ctx.leaf_nodes(row as usize));
                joined == matures[s].nodes
            })
        };
        let verdicts: Vec<Option<usize>> = if new_ids.len() * m_count >= MIN_PAR_SCAN_EVALS {
            kanon_parallel::map(new_ids.len(), decide)
        } else {
            (0..new_ids.len()).map(decide).collect()
        };
        self.arena.truncate(m_count);

        let mut absorbed: Vec<(usize, u32)> = Vec::new();
        let mut pending = self.pending.clone();
        for (i, verdict) in verdicts.iter().enumerate() {
            match verdict {
                Some(slot) => absorbed.push((*slot, new_ids[i])),
                None => pending.push(new_ids[i]),
            }
        }

        // ε-joins may widen a cluster closure: recompute the nodes and
        // cost of every touched slot over all its absorbed rows (the
        // closure of the union — identical to what a snapshot restore
        // recomputes from the member list). Under ε = 0 closures are
        // unchanged by construction and this stays empty.
        let mut widened: Vec<(usize, Vec<NodeId>, f64)> = Vec::new();
        let mut absorbed_eps = 0usize;
        if eps_on {
            let mut by_slot: Vec<(usize, Vec<u32>)> = Vec::new();
            for &(slot, row) in &absorbed {
                match by_slot.iter_mut().find(|(s, _)| *s == slot) {
                    Some((_, rows)) => rows.push(row),
                    None => by_slot.push((slot, vec![row])),
                }
            }
            for (slot, rows) in by_slot {
                let mut joined = matures[slot].nodes.clone();
                for &row in &rows {
                    let before = joined.clone();
                    ctx.join_nodes_into(&mut joined, &ctx.leaf_nodes(row as usize));
                    if joined != before {
                        absorbed_eps += 1;
                    }
                }
                if joined != matures[slot].nodes {
                    let cost = ctx.cost(&joined);
                    widened.push((slot, joined, cost));
                }
            }
        }

        // Sub-cluster the pending pool once it can stand on its own.
        let mut new_matures = Vec::new();
        let mut clustered = 0;
        let mut budget_exhausted = false;
        if pending.len() >= self.cfg.k {
            let idx: Vec<usize> = pending.iter().map(|&r| r as usize).collect();
            let sub = table.select_rows(&idx).map_err(KanonError::Core)?;
            let run = try_agglomerative_k_anonymize(
                &sub,
                &self.costs,
                &AgglomerativeConfig::new(self.cfg.k),
            )?;
            budget_exhausted = matches!(run, Budgeted::BudgetExhausted { .. });
            let out = run.into_inner();
            for local in out.clustering.clusters() {
                let mut members: Vec<u32> = local.iter().map(|&li| pending[li as usize]).collect();
                members.sort_unstable();
                clustered += members.len();
                let nodes = ctx.closure_of(&members);
                let cost = ctx.cost(&nodes);
                new_matures.push(Mature {
                    members,
                    nodes,
                    cost,
                });
            }
            pending.clear();
        }
        pending.sort_unstable();
        Ok(StagedApply {
            absorbed,
            absorbed_eps,
            widened,
            new_matures,
            pending,
            clustered,
            budget_exhausted,
        })
    }

    /// Generalized CSV of every published row, ascending global id.
    pub fn published_csv(&self) -> KanonResult<String> {
        let (gtable, _) = self.published_gtable()?;
        Ok(generalized_to_csv(&gtable))
    }

    /// Information loss of the published rows under the serve measure.
    pub fn published_loss(&self) -> KanonResult<f64> {
        let (gtable, _) = self.published_gtable()?;
        Ok(self.costs.table_loss(&gtable))
    }

    /// The published rows as a generalized sub-table plus the global
    /// ids backing each of its rows (ascending).
    fn published_gtable(&self) -> KanonResult<(kanon_core::table::GeneralizedTable, Vec<usize>)> {
        let mut ids: Vec<(u32, usize)> = Vec::new();
        for (c, m) in self.matures.iter().enumerate() {
            for &row in &m.members {
                ids.push((row, c));
            }
        }
        ids.sort_unstable();
        let idx: Vec<usize> = ids.iter().map(|&(row, _)| row as usize).collect();
        let mut clusters: Vec<Vec<u32>> = vec![Vec::new(); self.matures.len()];
        for (local, &(_, c)) in ids.iter().enumerate() {
            clusters[c].push(local as u32);
        }
        clusters.retain(|c| !c.is_empty());
        let table = self.table();
        let sub = table.select_rows(&idx).map_err(KanonError::Core)?;
        let clustering =
            Clustering::from_clusters(idx.len(), clusters).map_err(KanonError::Core)?;
        let gtable = clustering
            .to_generalized_table(&sub)
            .map_err(KanonError::Core)?;
        Ok((gtable, idx))
    }

    /// Relative loss drift of the incremental clustering against a
    /// from-scratch run: `(incremental - scratch) / scratch`, zero when
    /// the scratch loss is exactly zero.
    fn drift_of(loss_incremental: f64, loss_scratch: f64) -> f64 {
        if loss_scratch.total_cmp(&0.0) == std::cmp::Ordering::Equal {
            0.0
        } else {
            (loss_incremental - loss_scratch) / loss_scratch
        }
    }

    /// Measures loss drift against a fresh sharded run over the same
    /// published rows **without changing any state** — the read-only
    /// half of [`ServeState::reopt`], used by the E-S5 drift-curve
    /// experiment to watch drift accumulate across many batches.
    pub fn probe_drift(&self) -> KanonResult<ReoptOutcome> {
        let shard_cfg = shard_config(&self.cfg);
        let (gtable, idx) = self.published_gtable()?;
        let loss_incremental = self.costs.table_loss(&gtable);
        let table = self.table();
        let sub = table.select_rows(&idx).map_err(KanonError::Core)?;
        let loss_scratch = try_sharded_k_anonymize(&sub, &self.costs, &shard_cfg)?
            .into_inner()
            .out
            .loss;
        Ok(ReoptOutcome {
            loss_incremental,
            loss_scratch,
            drift: Self::drift_of(loss_incremental, loss_scratch),
            clusters: self.matures.len(),
        })
    }

    /// Re-optimizes from scratch: measures the incremental clustering's
    /// loss drift against a fresh sharded run over the published rows,
    /// then adopts a full-table fresh run (publishing everything,
    /// pending included). Unbudgeted — this is maintenance work.
    ///
    /// A successful reopt consumes a sequence number, exactly like a
    /// batch: the daemon journals an `O` record under that seq before
    /// calling this, so recovery replays the reopt at the same point in
    /// the batch sequence and reaches the same published clustering.
    pub fn reopt(&mut self) -> KanonResult<ReoptOutcome> {
        let shard_cfg = shard_config(&self.cfg);
        let table = self.table();
        let full = try_sharded_k_anonymize(&table, &self.costs, &shard_cfg)?
            .into_inner()
            .out;

        let (gtable, idx) = self.published_gtable()?;
        let loss_incremental = self.costs.table_loss(&gtable);
        let loss_scratch = if self.pending.is_empty() {
            // Published set == full table: reuse the run we already did.
            full.loss
        } else {
            let sub = table.select_rows(&idx).map_err(KanonError::Core)?;
            try_sharded_k_anonymize(&sub, &self.costs, &shard_cfg)?
                .into_inner()
                .out
                .loss
        };
        let drift = Self::drift_of(loss_incremental, loss_scratch);

        self.adopt_clustering(&full.clustering);
        self.seq += 1;
        self.reopt_runs += 1;
        self.last_drift = Some(drift);
        count(Counter::ServeReoptRuns, 1);
        Ok(ReoptOutcome {
            loss_incremental,
            loss_scratch,
            drift,
            clusters: self.matures.len(),
        })
    }

    // ------------------------------------------------------------------
    // Snapshot + journal recovery
    // ------------------------------------------------------------------

    /// Writes an atomic snapshot (`tmp` + fsync + rename) to `path`.
    /// Returns `Ok(false)` without writing when the
    /// `serve/snapshot/write` fail point fires — a failed snapshot only
    /// lengthens recovery, it never loses acknowledged batches.
    pub fn write_snapshot(&self, path: &Path) -> std::io::Result<bool> {
        if kanon_fault::armed() && kanon_fault::fires(POINT_SNAPSHOT_WRITE) {
            return Ok(false);
        }
        let mut text = format!(
            "KSNAP1 seq={} batches={} reopts={} base={} rows={} k={} measure={} drift={}\n",
            self.seq,
            self.batches_applied,
            self.reopt_runs,
            self.n_base,
            self.records.len(),
            self.cfg.k,
            match self.cfg.measure {
                Measure::Em => "em",
                Measure::Lm => "lm",
            },
            match self.last_drift {
                Some(d) => format!("{:016x}", d.to_bits()),
                None => "-".to_string(),
            }
        );
        text.push_str(&kanon_data::csv::table_to_csv(&self.table()));
        text.push_str(&format!("MATURES {}\n", self.matures.len()));
        for m in &self.matures {
            let ids: Vec<String> = m.members.iter().map(|r| r.to_string()).collect();
            text.push_str(&format!("M {}\n", ids.join(" ")));
        }
        let ids: Vec<String> = self.pending.iter().map(|r| r.to_string()).collect();
        text.push_str(&format!("PENDING {}\nEND\n", ids.join(" ")));

        let tmp = path.with_extension("tmp");
        {
            let mut f = std::fs::File::create(&tmp)?;
            use std::io::Write as _;
            f.write_all(text.as_bytes())?;
            f.sync_all()?;
        }
        std::fs::rename(&tmp, path)?;
        Ok(true)
    }

    /// Restores state from a snapshot written by
    /// [`write_snapshot`](Self::write_snapshot). `cfg` must match the
    /// flags of the writing process (`k` and measure are
    /// cross-checked).
    pub fn restore_snapshot(
        text: &str,
        cfg: ServeConfig,
        schema: SharedSchema,
    ) -> KanonResult<ServeState> {
        let bad = |why: &str| KanonError::Usage(format!("corrupt snapshot: {why}"));
        let (header, rest) = text.split_once('\n').ok_or_else(|| bad("missing header"))?;
        let mut fields = header.split(' ');
        if fields.next() != Some("KSNAP1") {
            return Err(bad("bad magic"));
        }
        let mut seq = 0u64;
        let mut batches = 0u64;
        let mut reopts = 0u64;
        let mut n_base = 0usize;
        let mut n_rows = 0usize;
        let mut drift = None;
        for field in fields {
            let (key, value) = field
                .split_once('=')
                .ok_or_else(|| bad("bad header field"))?;
            match key {
                "seq" => seq = value.parse().map_err(|_| bad("bad seq"))?,
                "batches" => batches = value.parse().map_err(|_| bad("bad batches"))?,
                "reopts" => reopts = value.parse().map_err(|_| bad("bad reopts"))?,
                "base" => n_base = value.parse().map_err(|_| bad("bad base"))?,
                "rows" => n_rows = value.parse().map_err(|_| bad("bad rows"))?,
                "k" => {
                    let k: usize = value.parse().map_err(|_| bad("bad k"))?;
                    if k != cfg.k {
                        return Err(KanonError::Usage(format!(
                            "snapshot was taken with k={k} but serve was started with k={}",
                            cfg.k
                        )));
                    }
                }
                "measure" => {
                    let m = Measure::parse(value).ok_or_else(|| bad("bad measure"))?;
                    if m != cfg.measure {
                        return Err(KanonError::Usage(
                            "snapshot measure does not match --measure".to_string(),
                        ));
                    }
                }
                "drift" => {
                    if value != "-" {
                        let bits = u64::from_str_radix(value, 16).map_err(|_| bad("bad drift"))?;
                        drift = Some(f64::from_bits(bits));
                    }
                }
                _ => return Err(bad("unknown header field")),
            }
        }

        // The CSV block is n_rows data rows plus its header line.
        let mut lines = rest.split_inclusive('\n');
        let mut csv = String::new();
        for _ in 0..n_rows + 1 {
            csv.push_str(lines.next().ok_or_else(|| bad("truncated rows"))?);
        }
        let (table, _) = table_from_csv_with_policy(&schema, &csv, true, RowPolicy::Strict)
            .map_err(KanonError::Core)?;
        if table.num_rows() != n_rows {
            return Err(bad("row count mismatch"));
        }

        let parse_ids = |line: &str, tag: &str| -> KanonResult<Vec<u32>> {
            let body = line
                .trim_end_matches('\n')
                .strip_prefix(tag)
                .ok_or_else(|| bad("bad section tag"))?;
            body.split_whitespace()
                .map(|w| w.parse::<u32>().map_err(|_| bad("bad row id")))
                .collect()
        };
        let matures_line = lines.next().ok_or_else(|| bad("missing MATURES"))?;
        let n_matures: usize = matures_line
            .trim_end_matches('\n')
            .strip_prefix("MATURES ")
            .and_then(|w| w.parse().ok())
            .ok_or_else(|| bad("bad MATURES line"))?;
        let mut member_lists = Vec::with_capacity(n_matures);
        for _ in 0..n_matures {
            let line = lines.next().ok_or_else(|| bad("truncated matures"))?;
            member_lists.push(parse_ids(line, "M ")?);
        }
        let pending_line = lines.next().ok_or_else(|| bad("missing PENDING"))?;
        let pending = if pending_line.trim_end_matches('\n') == "PENDING" {
            Vec::new()
        } else {
            parse_ids(pending_line, "PENDING ")?
        };
        if lines.next().map(|l| l.trim_end_matches('\n')) != Some("END") {
            return Err(bad("missing END marker"));
        }

        // Costs are pinned to the base epoch: recompute them from the
        // base prefix exactly as bootstrap did.
        let base = table
            .select_rows(&(0..n_base).collect::<Vec<_>>())
            .map_err(KanonError::Core)?;
        let costs = cfg.measure.compute(&base);
        let records = table.rows().to_vec();
        let mut state = ServeState {
            schema,
            cfg,
            costs,
            records,
            n_base,
            matures: Vec::new(),
            pending,
            arena: SigArena::with_capacity(0, 0),
            seq,
            batches_applied: batches,
            reopt_runs: reopts,
            last_drift: drift,
        };
        let table = state.table();
        let ctx = CostContext::new(&table, &state.costs);
        state.matures = member_lists
            .into_iter()
            .map(|members| {
                let nodes = ctx.closure_of(&members);
                let cost = ctx.cost(&nodes);
                Mature {
                    members,
                    nodes,
                    cost,
                }
            })
            .collect();
        drop(ctx);
        state.rebuild_arena();
        Ok(state)
    }

    /// Replays a journal on top of this state: every `B` and `O` record
    /// with `seq` beyond the snapshot — minus those cancelled by a later
    /// `R` rollback marker — is re-applied under its recorded relative
    /// budget. Deterministic code + relative budgets ⇒ the recovered
    /// state is byte-identical to the pre-crash state.
    ///
    /// One crash window needs repair rather than faithful re-execution:
    /// a record is journaled *before* its apply, and a permanent apply
    /// failure only gets its `R` marker after all retries. A `kill -9`
    /// inside that window leaves a journaled record whose replay fails
    /// with the same deterministic error. Since nothing can have been
    /// journaled after it, that record is necessarily the final one —
    /// so a permanently failing **final** record is rolled back at
    /// recovery time (the `R` marker is appended now) instead of
    /// wedging startup. A deterministic failure anywhere earlier means
    /// real corruption or non-determinism and still propagates.
    pub fn replay_journal(&mut self, path: &Path) -> KanonResult<u64> {
        // Repair a crash-torn tail *before* anything reopens the file
        // for appending (the recovery-rollback arm below does, and the
        // daemon reopens right after this returns): appending past a
        // tear would bury it mid-file, where the stop-at-first-bad-
        // record rule hides every later acknowledged record from the
        // next recovery.
        crate::journal::truncate_torn_tail(path)
            .map_err(|e| KanonError::Usage(format!("cannot repair journal tail: {e}")))?;
        let records = read_journal(path)
            .map_err(|e| KanonError::Usage(format!("cannot read journal: {e}")))?;
        crate::journal::validate_order(&records).map_err(KanonError::Usage)?;
        let rolled_back: Vec<u64> = records
            .iter()
            .filter(|r| r.kind == RecordKind::Rollback)
            .map(|r| r.seq)
            .collect();
        let mut replayed = 0;
        for (idx, rec) in records.iter().enumerate() {
            if rec.seq <= self.seq
                || rec.kind == RecordKind::Rollback
                || rolled_back.contains(&rec.seq)
            {
                if rec.kind == RecordKind::Rollback && rec.seq > self.seq {
                    // Acknowledge the failed seq so new batches continue
                    // numbering after it.
                    self.seq = rec.seq;
                }
                continue;
            }
            kanon_fault::fail_point!(POINT_JOURNAL_REPLAY);
            // A gap means burned sequence numbers whose rollback markers
            // were compacted away with the covered prefix; the journal's
            // numbering is authoritative, so the replayed apply must
            // commit under the recorded seq.
            if rec.seq > self.seq + 1 {
                self.seq = rec.seq - 1;
            }
            let outcome = match rec.kind {
                RecordKind::Batch => {
                    let body = std::str::from_utf8(&rec.payload).map_err(|_| {
                        KanonError::Usage("journal payload is not UTF-8".to_string())
                    })?;
                    self.apply_replayed(rec, body)
                }
                RecordKind::Reopt => self.replay_reopt(rec),
                RecordKind::Rollback => unreachable!("rollbacks are filtered above"),
            };
            match outcome {
                Ok(()) => replayed += 1,
                Err(e) if idx == records.len() - 1 && !crate::transient(&e) => {
                    let mut journal = crate::journal::Journal::open(path)
                        .map_err(|je| KanonError::Usage(format!("cannot open journal: {je}")))?;
                    journal
                        .append(rec.seq, RecordKind::Rollback, 0, 0.0, b"")
                        .map_err(|je| {
                            KanonError::Usage(format!("cannot roll back journal tail: {je}"))
                        })?;
                    self.note_rollback(rec.seq);
                }
                Err(e) => return Err(e),
            }
        }
        Ok(replayed)
    }

    fn apply_replayed(&mut self, rec: &JournalRecord, body: &str) -> KanonResult<()> {
        // Each replayed apply runs under its own fresh collector so the
        // recorded relative budget bites at the identical point it did
        // in the original process; the inner counters are then folded
        // into whatever collector the caller installed (the daemon's
        // `recovery` collector), so a recovered daemon can report the
        // replayed work distinctly from its own lifetime.
        let collector = kanon_obs::Collector::new();
        let guard = collector.install();
        let applied = self.apply_batch(body, rec.budget, rec.epsilon());
        drop(guard);
        crate::fold_report(&collector.report());
        count(Counter::ServeJournalReplays, 1);
        match applied {
            Ok(report) => {
                debug_assert_eq!(report.seq, rec.seq);
                Ok(())
            }
            Err(e) => Err(e),
        }
    }

    /// Re-runs a journaled re-optimization pass. Unbudgeted and
    /// deterministic, so the adopted clustering is byte-identical to
    /// the one the pre-crash process published.
    fn replay_reopt(&mut self, rec: &JournalRecord) -> KanonResult<()> {
        let collector = kanon_obs::Collector::new();
        let guard = collector.install();
        let out = self.reopt();
        drop(guard);
        crate::fold_report(&collector.report());
        count(Counter::ServeJournalReplays, 1);
        out.map(|_| {
            debug_assert_eq!(self.seq, rec.seq);
        })
    }
}

/// Sharded-run config for bootstrap/re-optimization; `shard_max == 0`
/// means "use the `KANON_SHARD_MAX` default".
fn shard_config(cfg: &ServeConfig) -> ShardConfig {
    let base = ShardConfig::new(cfg.k);
    if cfg.shard_max > 0 {
        base.with_shard_max(cfg.shard_max)
    } else {
        base
    }
}

/// Staged (uncommitted) outcome of a batch apply.
struct StagedApply {
    /// `(mature slot, global row id)` absorption assignments.
    absorbed: Vec<(usize, u32)>,
    /// How many absorptions went through the ε tier with a changed
    /// closure (0 whenever ε = 0).
    absorbed_eps: usize,
    /// Post-join closure nodes and cost of every slot an ε-join
    /// widened (empty whenever ε = 0).
    widened: Vec<(usize, Vec<NodeId>, f64)>,
    new_matures: Vec<Mature>,
    pending: Vec<u32>,
    clustered: usize,
    budget_exhausted: bool,
}

#[cfg(test)]
mod tests {
    use super::*;
    use kanon_core::schema::SchemaBuilder;

    fn schema() -> SharedSchema {
        // Two attributes with small two-level hierarchies, mirroring the
        // fixtures used across the algos crates.
        SchemaBuilder::new()
            .categorical_with_groups(
                "zip",
                ["10", "11", "20", "21"],
                &[&["10", "11"], &["20", "21"]],
            )
            .categorical_with_groups(
                "age",
                ["20s", "30s", "60s", "70s"],
                &[&["20s", "30s"], &["60s", "70s"]],
            )
            .build_shared()
            .unwrap()
    }

    fn base_csv() -> &'static str {
        "10,20s\n10,30s\n11,20s\n20,60s\n21,70s\n20,70s\n"
    }

    fn cfg() -> ServeConfig {
        ServeConfig {
            k: 2,
            measure: Measure::Lm,
            policy: RowPolicy::Strict,
            shard_max: 0,
            reopt_every: 0,
            absorb_epsilon: 0.0,
        }
    }

    fn boot() -> ServeState {
        let (table, _) =
            table_from_csv_with_policy(&schema(), base_csv(), false, RowPolicy::Strict).unwrap();
        ServeState::bootstrap(table, cfg()).unwrap()
    }

    fn fingerprint(s: &ServeState) -> String {
        let matures: Vec<String> = s
            .matures
            .iter()
            .map(|m| {
                format!(
                    "{:?}:{:?}:{:016x}",
                    m.members,
                    m.nodes.iter().map(|n| n.0).collect::<Vec<_>>(),
                    m.cost.to_bits()
                )
            })
            .collect();
        format!(
            "seq={} batches={} rows={} pending={:?} matures=[{}] out={:?}",
            s.seq,
            s.batches_applied,
            s.records.len(),
            s.pending,
            matures.join(";"),
            s.published_csv().unwrap()
        )
    }

    #[test]
    fn bootstrap_publishes_every_base_row() {
        let s = boot();
        assert_eq!(s.num_rows(), 6);
        assert_eq!(s.published_rows(), 6);
        assert_eq!(s.pending_rows(), 0);
        assert!(s.mature_clusters() >= 1);
        assert_eq!(s.published_csv().unwrap().lines().count(), 7); // header + 6 rows
    }

    #[test]
    fn bootstrap_rejects_tiny_base() {
        let (table, _) =
            table_from_csv_with_policy(&schema(), "10,20s\n", false, RowPolicy::Strict).unwrap();
        let err = ServeState::bootstrap(table, cfg()).unwrap_err();
        assert!(matches!(err, KanonError::Usage(_)));
    }

    #[test]
    fn small_batches_stay_pending_until_k() {
        let mut s = boot();
        let r = s.apply_batch("10,70s\n", 0, 0.0).unwrap();
        // The row either absorbs for free or waits as a pending singleton.
        assert_eq!(r.rows_in, 1);
        assert_eq!(r.absorbed + r.pending, 1);
        assert_eq!(s.num_rows(), 7);
    }

    #[test]
    fn pending_pool_clusters_once_it_reaches_k() {
        let mut s = boot();
        // Rows far from any existing closure (mixed zip branch + age branch).
        s.apply_batch("10,60s\n11,70s\n10,70s\n11,60s\n", 0, 0.0)
            .unwrap();
        assert_eq!(s.pending_rows() % 2, 0);
        assert_eq!(s.published_rows() + s.pending_rows(), 10);
        // All published rows appear in the output, ascending.
        let out = s.published_csv().unwrap();
        assert_eq!(out.lines().count(), 1 + s.published_rows());
    }

    #[test]
    fn absorption_only_happens_when_closure_is_unchanged() {
        let mut s = boot();
        let before = s.published_csv().unwrap();
        let r = s.apply_batch("10,20s\n", 0, 0.0).unwrap();
        if r.absorbed == 1 {
            // The pre-existing published rows must be untouched: the new
            // output is the old output with exactly one extra line.
            let after = s.published_csv().unwrap();
            assert_eq!(after.lines().count(), before.lines().count() + 1);
            for line in before.lines() {
                assert!(after.contains(line));
            }
        }
    }

    #[test]
    fn failed_apply_leaves_state_untouched() {
        let mut s = boot();
        let before = fingerprint(&s);
        // Unknown label -> CoreError under Strict policy.
        let err = s.apply_batch("99,20s\n", 0, 0.0).unwrap_err();
        assert!(matches!(err, KanonError::Core(_)));
        assert_eq!(fingerprint(&s), before);
        // An injected fault before staging also leaves no trace.
        let _g = kanon_fault::scoped(&format!("{POINT_BATCH_APPLY}=once:1"));
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            s.apply_batch("10,20s\n", 0, 0.0)
        }))
        .unwrap_err();
        let e = kanon_algos::fallible::error_from_panic(err);
        assert!(matches!(e, KanonError::FaultInjected { .. }));
        assert_eq!(fingerprint(&s), before);
    }

    #[test]
    fn snapshot_round_trips_byte_identically() {
        let mut s = boot();
        s.apply_batch("10,60s\n11,70s\n10,70s\n11,60s\n", 0, 0.0)
            .unwrap();
        s.apply_batch("10,20s\n", 0, 0.0).unwrap();
        let dir = std::env::temp_dir().join(format!("kanon-serve-snap-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("state.snap");
        assert!(s.write_snapshot(&path).unwrap());
        let text = std::fs::read_to_string(&path).unwrap();
        let restored = ServeState::restore_snapshot(&text, cfg(), schema()).unwrap();
        assert_eq!(fingerprint(&restored), fingerprint(&s));
    }

    #[test]
    fn snapshot_k_mismatch_is_a_usage_error() {
        let s = boot();
        let dir = std::env::temp_dir().join(format!("kanon-serve-snapk-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("state.snap");
        s.write_snapshot(&path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let mut wrong = cfg();
        wrong.k = 3;
        let err = ServeState::restore_snapshot(&text, wrong, schema()).unwrap_err();
        assert!(matches!(err, KanonError::Usage(_)));
    }

    #[test]
    fn replay_reproduces_live_state_byte_identically() {
        use crate::journal::{Journal, RecordKind};
        let dir = std::env::temp_dir().join(format!("kanon-serve-replay-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let jpath = dir.join("journal.log");

        let batches = ["10,60s\n11,70s\n", "10,70s\n11,60s\n", "10,20s\n21,60s\n"];
        // Live process: journal, then apply.
        let mut live = boot();
        let mut j = Journal::open(&jpath).unwrap();
        for b in &batches {
            j.append(live.next_seq(), RecordKind::Batch, 0, 0.0, b.as_bytes())
                .unwrap();
            live.apply_batch(b, 0, 0.0).unwrap();
        }
        drop(j);

        // Crash-restart: bootstrap again, replay the journal.
        let mut recovered = boot();
        let replayed = recovered.replay_journal(&jpath).unwrap();
        assert_eq!(replayed, 3);
        assert_eq!(fingerprint(&recovered), fingerprint(&live));
    }

    #[test]
    fn replay_skips_rolled_back_batches() {
        use crate::journal::{Journal, RecordKind};
        let dir = std::env::temp_dir().join(format!("kanon-serve-rollback-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let jpath = dir.join("journal.log");

        let mut live = boot();
        let mut j = Journal::open(&jpath).unwrap();
        j.append(1, RecordKind::Batch, 0, 0.0, b"10,60s\n11,70s\n")
            .unwrap();
        live.apply_batch("10,60s\n11,70s\n", 0, 0.0).unwrap();
        // Seq 2 was journaled but permanently failed -> rollback marker.
        j.append(2, RecordKind::Batch, 0, 0.0, b"10,70s\n").unwrap();
        j.append(2, RecordKind::Rollback, 0, 0.0, b"").unwrap();
        drop(j);

        let mut recovered = boot();
        let replayed = recovered.replay_journal(&jpath).unwrap();
        assert_eq!(replayed, 1);
        assert_eq!(recovered.num_rows(), live.num_rows());
        // Rollback advances the sequence so the next accepted batch
        // does not reuse seq 2.
        assert_eq!(recovered.next_seq(), 3);
    }

    #[test]
    fn replay_reproduces_a_reopt_byte_identically() {
        use crate::journal::{Journal, RecordKind};
        let dir =
            std::env::temp_dir().join(format!("kanon-serve-reopt-replay-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let jpath = dir.join("journal.log");

        // Live process: batch, reopt, batch — each journaled first.
        let mut live = boot();
        let mut j = Journal::open(&jpath).unwrap();
        j.append(1, RecordKind::Batch, 0, 0.0, b"10,60s\n11,70s\n")
            .unwrap();
        live.apply_batch("10,60s\n11,70s\n", 0, 0.0).unwrap();
        j.append(2, RecordKind::Reopt, 0, 0.0, b"").unwrap();
        live.reopt().unwrap();
        j.append(3, RecordKind::Batch, 0, 0.0, b"10,20s\n21,60s\n")
            .unwrap();
        live.apply_batch("10,20s\n21,60s\n", 0, 0.0).unwrap();
        drop(j);

        let mut recovered = boot();
        assert_eq!(recovered.replay_journal(&jpath).unwrap(), 3);
        assert_eq!(fingerprint(&recovered), fingerprint(&live));
        assert_eq!(recovered.reopt_runs(), live.reopt_runs());
        assert_eq!(
            recovered.last_drift().map(f64::to_bits),
            live.last_drift().map(f64::to_bits)
        );
    }

    #[test]
    fn permanently_failing_final_record_is_rolled_back_at_recovery() {
        use crate::journal::{read_journal, Journal, RecordKind};
        let dir =
            std::env::temp_dir().join(format!("kanon-serve-crashwindow-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let jpath = dir.join("journal.log");

        // The crash window: seq 2 was journaled, its apply failed
        // deterministically (bad label under Strict), and the process
        // died before appending the rollback marker.
        let mut live = boot();
        let mut j = Journal::open(&jpath).unwrap();
        j.append(1, RecordKind::Batch, 0, 0.0, b"10,60s\n11,70s\n")
            .unwrap();
        live.apply_batch("10,60s\n11,70s\n", 0, 0.0).unwrap();
        j.append(2, RecordKind::Batch, 0, 0.0, b"99,99\n").unwrap();
        drop(j);

        // Recovery must not wedge: the final record is rolled back (the
        // `R` marker is appended now) and its seq burned.
        let mut recovered = boot();
        assert_eq!(recovered.replay_journal(&jpath).unwrap(), 1);
        assert_eq!(recovered.next_seq(), 3);
        assert_eq!(recovered.num_rows(), live.num_rows());
        let recs = read_journal(&jpath).unwrap();
        assert_eq!(recs.last().unwrap().kind, RecordKind::Rollback);
        assert_eq!(recs.last().unwrap().seq, 2);
        // A second recovery sees the marker and replays cleanly too.
        let mut again = boot();
        assert_eq!(again.replay_journal(&jpath).unwrap(), 1);
        assert_eq!(again.next_seq(), 3);
    }

    #[test]
    fn failing_mid_journal_record_still_propagates() {
        use crate::journal::{Journal, RecordKind};
        let dir = std::env::temp_dir().join(format!("kanon-serve-midfail-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let jpath = dir.join("journal.log");

        // A deterministically failing record *followed by* another
        // record cannot be a crash window (the live process would have
        // rolled it back before journaling anything else) — that is
        // corruption, and replay must refuse to guess.
        let mut j = Journal::open(&jpath).unwrap();
        j.append(1, RecordKind::Batch, 0, 0.0, b"99,99\n").unwrap();
        j.append(2, RecordKind::Batch, 0, 0.0, b"10,60s\n11,70s\n")
            .unwrap();
        drop(j);
        let err = boot().replay_journal(&jpath).unwrap_err();
        assert!(matches!(err, KanonError::Core(_)), "{err:?}");
    }

    #[test]
    fn budgeted_apply_is_deterministic_for_replay() {
        let batch = "10,60s\n11,70s\n10,70s\n11,60s\n20,20s\n21,30s\n";
        let run = |budget: u64| {
            let collector = kanon_obs::Collector::new();
            let _g = collector.install();
            let mut s = boot();
            s.apply_batch(batch, budget, 0.0).unwrap();
            fingerprint(&s)
        };
        // A tight budget produces a (possibly partial) result; the same
        // budget must reproduce it bit-for-bit.
        assert_eq!(run(50), run(50));
        assert_eq!(run(0), run(0));
    }

    #[test]
    fn tiny_epsilon_admits_free_joins_and_refuses_widening() {
        // "11,30s" absorbs for free: its leaves sit inside an existing
        // closure, so the join raises that cluster's loss by exactly
        // zero — admissible under every ε > 0. The tier is a superset
        // of free absorption, not a restriction of it.
        let mut s = boot();
        let r = s.apply_batch("11,30s\n", 0, 1e-12).unwrap();
        assert_eq!(r.absorbed, 1);
        assert_eq!(r.absorbed_eps, 0, "a free join must not count as an ε-join");

        // A row outside every closure can only enter by widening some
        // cluster, and any real widening raises that cluster's loss by
        // far more than 1e-12 — so under a tiny ε it pends, exactly as
        // the free tier would have it.
        let (table, _) = table_from_csv_with_policy(
            &schema(),
            "10,20s\n10,30s\n20,60s\n21,70s\n",
            false,
            RowPolicy::Strict,
        )
        .unwrap();
        let mut s = ServeState::bootstrap(table, cfg()).unwrap();
        let r = s.apply_batch("10,60s\n", 0, 1e-12).unwrap();
        assert_eq!(r.absorbed, 0);
        assert_eq!(r.pending, 1);
    }

    #[test]
    fn large_epsilon_widens_a_cluster_and_stays_consistent() {
        // A 4-row base whose two bootstrap clusters are both tight (no
        // fully-generalized cluster whose closure covers everything), so
        // "10,60s" cannot free-absorb — but a huge ε lets the cheapest
        // cluster widen around it.
        let (table, _) = table_from_csv_with_policy(
            &schema(),
            "10,20s\n10,30s\n20,60s\n21,70s\n",
            false,
            RowPolicy::Strict,
        )
        .unwrap();
        let mut s = ServeState::bootstrap(table, cfg()).unwrap();
        let before_clusters = s.mature_clusters();
        let free = s.apply_batch("10,60s\n", 0, 0.0).unwrap();
        assert_eq!(free.absorbed, 0, "premise: the row must not free-absorb");
        assert_eq!(free.pending, 1);

        let (table, _) = table_from_csv_with_policy(
            &schema(),
            "10,20s\n10,30s\n20,60s\n21,70s\n",
            false,
            RowPolicy::Strict,
        )
        .unwrap();
        let mut s = ServeState::bootstrap(table, cfg()).unwrap();
        let r = s.apply_batch("10,60s\n", 0, 1e9).unwrap();
        assert_eq!(r.absorbed, 1);
        assert_eq!(r.absorbed_eps, 1);
        assert_eq!(s.mature_clusters(), before_clusters);
        assert_eq!(s.pending_rows(), 0);
        // The widened closure must equal the closure a snapshot restore
        // recomputes from the member list — snapshot round-trip is the
        // sharpest check of that invariant.
        let dir = std::env::temp_dir().join(format!("kanon-serve-epssnap-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("state.snap");
        assert!(s.write_snapshot(&path).unwrap());
        let text = std::fs::read_to_string(&path).unwrap();
        let restored = ServeState::restore_snapshot(&text, cfg(), schema()).unwrap();
        assert_eq!(fingerprint(&restored), fingerprint(&s));
    }

    #[test]
    fn eps_batches_replay_byte_identically_from_the_journal() {
        use crate::journal::{Journal, RecordKind};
        let dir =
            std::env::temp_dir().join(format!("kanon-serve-epsreplay-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let jpath = dir.join("journal.log");

        // Mixed history: an ε batch between two exact ones, journaled
        // with its effective ε so replay re-runs the same criterion.
        let mut live = boot();
        let mut j = Journal::open(&jpath).unwrap();
        j.append(1, RecordKind::Batch, 0, 0.0, b"10,60s\n11,70s\n")
            .unwrap();
        live.apply_batch("10,60s\n11,70s\n", 0, 0.0).unwrap();
        j.append(2, RecordKind::Batch, 0, 0.75, b"10,70s\n11,30s\n")
            .unwrap();
        live.apply_batch("10,70s\n11,30s\n", 0, 0.75).unwrap();
        j.append(3, RecordKind::Batch, 0, 0.0, b"10,20s\n").unwrap();
        live.apply_batch("10,20s\n", 0, 0.0).unwrap();
        drop(j);

        let mut recovered = boot();
        assert_eq!(recovered.replay_journal(&jpath).unwrap(), 3);
        assert_eq!(fingerprint(&recovered), fingerprint(&live));
    }

    #[test]
    fn replay_rejects_out_of_order_journals() {
        use crate::journal::{Journal, RecordKind};
        for (name, seqs) in [("dup", [1u64, 1]), ("decreasing", [2, 1])] {
            let dir = std::env::temp_dir().join(format!(
                "kanon-serve-seqcheck-{name}-{}",
                std::process::id()
            ));
            let _ = std::fs::remove_dir_all(&dir);
            std::fs::create_dir_all(&dir).unwrap();
            let jpath = dir.join("journal.log");
            let mut j = Journal::open(&jpath).unwrap();
            j.append(seqs[0], RecordKind::Batch, 0, 0.0, b"10,20s\n")
                .unwrap();
            j.append(seqs[1], RecordKind::Batch, 0, 0.0, b"10,30s\n")
                .unwrap();
            drop(j);
            let err = boot().replay_journal(&jpath).unwrap_err();
            match err {
                KanonError::Usage(msg) => {
                    assert!(msg.contains("does not advance"), "{name}: {msg}")
                }
                other => panic!("{name}: wrong error {other:?}"),
            }
        }
        // Gaps stay fine: burned sequence numbers are normal.
        let dir = std::env::temp_dir().join(format!("kanon-serve-seqgap-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let jpath = dir.join("journal.log");
        let mut j = Journal::open(&jpath).unwrap();
        j.append(1, RecordKind::Batch, 0, 0.0, b"10,20s\n").unwrap();
        j.append(5, RecordKind::Batch, 0, 0.0, b"10,30s\n").unwrap();
        drop(j);
        let mut s = boot();
        assert_eq!(s.replay_journal(&jpath).unwrap(), 2);
        assert_eq!(s.next_seq(), 6);
    }

    #[test]
    fn reopt_measures_drift_and_publishes_everything() {
        let mut s = boot();
        s.apply_batch("10,60s\n", 0, 0.0).unwrap();
        s.apply_batch("11,70s\n", 0, 0.0).unwrap();
        let out = s.reopt().unwrap();
        assert_eq!(s.pending_rows(), 0);
        assert_eq!(s.published_rows(), 8);
        assert!(
            out.drift >= -1e-9,
            "incremental should never beat scratch by much: {out:?}"
        );
        assert_eq!(s.last_drift(), Some(out.drift));
        assert_eq!(s.reopt_runs(), 1);
    }

    #[test]
    fn snapshot_write_fail_point_degrades_gracefully() {
        let s = boot();
        let dir = std::env::temp_dir().join(format!("kanon-serve-snapfp-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("state.snap");
        let _g = kanon_fault::scoped(&format!("{POINT_SNAPSHOT_WRITE}=once:1"));
        assert!(!s.write_snapshot(&path).unwrap());
        assert!(!path.exists());
        // Second attempt (fault exhausted) succeeds.
        assert!(s.write_snapshot(&path).unwrap());
        assert!(path.exists());
    }

    mod compaction_equivalence {
        use super::*;
        use crate::journal::{Journal, RecordKind};
        use proptest::prelude::*;
        use std::path::PathBuf;
        use std::sync::atomic::{AtomicU64, Ordering};

        /// A minimal daemon stand-in driving the exact WAL discipline of
        /// `kanon_serve::Daemon` — journal (fsync) before apply, `R`
        /// markers on failure, recovery via snapshot restore + replay —
        /// with snapshot+compaction either on (every 2 applied batches)
        /// or off (journal-only recovery).
        struct Rig {
            dir: PathBuf,
            snapshotting: bool,
            state: ServeState,
            journal: Journal,
        }

        impl Rig {
            fn open(dir: PathBuf, snapshotting: bool) -> Rig {
                std::fs::create_dir_all(&dir).unwrap();
                let snap = dir.join("state.snap");
                let jpath = dir.join("journal.log");
                let mut state = if snap.exists() {
                    let text = std::fs::read_to_string(&snap).unwrap();
                    ServeState::restore_snapshot(&text, cfg(), schema()).unwrap()
                } else {
                    let (table, _) =
                        table_from_csv_with_policy(&schema(), base_csv(), false, RowPolicy::Strict)
                            .unwrap();
                    ServeState::bootstrap(table, cfg()).unwrap()
                };
                state.replay_journal(&jpath).unwrap();
                let journal = Journal::open(&jpath).unwrap();
                Rig {
                    dir,
                    snapshotting,
                    state,
                    journal,
                }
            }

            fn batch(&mut self, body: &str, eps: f64) {
                let seq = self.state.next_seq();
                self.journal
                    .append(seq, RecordKind::Batch, 0, eps, body.as_bytes())
                    .unwrap();
                match self.state.apply_batch(body, 0, eps) {
                    Ok(_) => self.maybe_snapshot(),
                    Err(_) => {
                        self.journal
                            .append(seq, RecordKind::Rollback, 0, 0.0, b"")
                            .unwrap();
                        self.state.note_rollback(seq);
                    }
                }
            }

            fn reopt(&mut self) {
                let seq = self.state.next_seq();
                self.journal
                    .append(seq, RecordKind::Reopt, 0, 0.0, b"")
                    .unwrap();
                if self.state.reopt().is_err() {
                    self.journal
                        .append(seq, RecordKind::Rollback, 0, 0.0, b"")
                        .unwrap();
                    self.state.note_rollback(seq);
                }
            }

            fn maybe_snapshot(&mut self) {
                // `u64::is_multiple_of` needs Rust 1.87; MSRV is 1.75.
                #[allow(clippy::manual_is_multiple_of)]
                if self.snapshotting
                    && self.state.batches_applied() % 2 == 0
                    && self
                        .state
                        .write_snapshot(&self.dir.join("state.snap"))
                        .unwrap()
                {
                    self.journal.compact(self.state.next_seq() - 1).unwrap();
                }
            }

            /// `kill -9` and restart; `torn` leaves a half-written record
            /// at the journal tail, as a crash mid-append would.
            fn crash(self, torn: bool) -> Rig {
                let Rig {
                    dir, snapshotting, ..
                } = self;
                if torn {
                    let mut f = std::fs::OpenOptions::new()
                        .create(true)
                        .append(true)
                        .open(dir.join("journal.log"))
                        .unwrap();
                    std::io::Write::write_all(&mut f, b"KJ1 999 B 0 50 00000000\nxx").unwrap();
                }
                Rig::open(dir, snapshotting)
            }
        }

        fn fresh_dir(tag: &str) -> PathBuf {
            static NEXT: AtomicU64 = AtomicU64::new(0);
            let n = NEXT.fetch_add(1, Ordering::Relaxed);
            let dir = std::env::temp_dir()
                .join(format!("kanon-serve-prop-{tag}-{}-{n}", std::process::id()));
            let _ = std::fs::remove_dir_all(&dir);
            dir
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(24))]

            /// For any interleaving of plain/ε batches, reopts,
            /// rollbacks and (torn) crashes, recovery from snapshot +
            /// compacted journal is byte-identical to recovery from the
            /// full journal.
            #[test]
            fn compacted_recovery_equals_full_journal_recovery(
                ops in proptest::collection::vec(0u8..7, 0..12)
            ) {
                let mut a = Rig::open(fresh_dir("a"), true);
                let mut b = Rig::open(fresh_dir("b"), false);
                for op in ops {
                    match op {
                        0 => { a.batch("10,60s\n11,70s\n", 0.0); b.batch("10,60s\n11,70s\n", 0.0); }
                        1 => { a.batch("10,70s\n", 0.0); b.batch("10,70s\n", 0.0); }
                        2 => { a.batch("11,30s\n20,60s\n", 0.75); b.batch("11,30s\n20,60s\n", 0.75); }
                        3 => { a.batch("99,99\n", 0.0); b.batch("99,99\n", 0.0); } // rolls back
                        4 => { a.reopt(); b.reopt(); }
                        5 => { a = a.crash(false); b = b.crash(false); }
                        _ => { a = a.crash(true); b = b.crash(true); }
                    }
                    prop_assert_eq!(fingerprint(&a.state), fingerprint(&b.state));
                }
                // Final kill -9 on both: the recovered twins must match
                // bit for bit, and the compacting rig's journal must not
                // exceed the full one.
                let ja = std::fs::metadata(a.dir.join("journal.log")).map(|m| m.len()).unwrap_or(0);
                let jb = std::fs::metadata(b.dir.join("journal.log")).map(|m| m.len()).unwrap_or(0);
                prop_assert!(ja <= jb, "compacted journal larger than full: {} > {}", ja, jb);
                let a = a.crash(false);
                let b = b.crash(false);
                prop_assert_eq!(fingerprint(&a.state), fingerprint(&b.state));
                let _ = std::fs::remove_dir_all(&a.dir);
                let _ = std::fs::remove_dir_all(&b.dir);
            }
        }
    }
}
