//! Write-ahead batch journal.
//!
//! Every state mutation — an accepted batch or a re-optimization pass —
//! is appended (and fsynced) to `journal.log` *before* it is applied to
//! in-memory state, so a `kill -9` at any instant loses at most work
//! that was never acknowledged. On restart the daemon replays the
//! journal on top of the latest snapshot and reaches byte-identical
//! state — replay re-runs the same deterministic clustering code under
//! the same recorded work budget.
//!
//! ## Record format
//!
//! One record per line-pair, text header + raw payload:
//!
//! ```text
//! KJ1 <seq> <kind> <budget> <len> <crc32>\n
//! <payload bytes>\n
//! KJ2 <seq> <kind> <budget> <eps-bits> <len> <crc32>\n
//! <payload bytes>\n
//! ```
//!
//! * `seq` — monotonically increasing batch sequence number.
//! * `kind` — `B` (batch body follows), `O` (a re-optimization pass ran
//!   at this point in the sequence; payload empty), or `R` (the record
//!   with this `seq` was rolled back after a permanent failure; payload
//!   empty).
//! * `budget` — the *relative* work-budget units granted to the batch
//!   (`0` = unbounded). Relative units make replay independent of
//!   process history: each apply runs under a fresh collector.
//! * `eps-bits` — `KJ2` only: the effective `absorb_epsilon` of the
//!   batch as 16 hex digits of its `f64` bit pattern, so replay re-runs
//!   the exact same absorption criterion. Records with ε = 0 are
//!   written in the `KJ1` form, so ε-free journals stay byte-identical
//!   to the legacy format (and legacy journals decode unchanged).
//! * `len`/`crc32` — payload byte length and IEEE CRC-32 (hex).
//!
//! A torn tail (truncated or CRC-mismatched final record, the only
//! corruption a crash mid-append can produce) is detected and
//! discarded; anything after the first bad record is ignored. To keep
//! "torn record" synonymous with "final record", a *failed* append
//! truncates the file back to its pre-append length before returning —
//! otherwise a later successful append would bury the torn bytes
//! mid-file and silently hide every record after them from replay. If
//! that repair itself fails the handle is poisoned and refuses further
//! appends, so no acknowledged record can ever land beyond a tear.
//!
//! A *crash* mid-append leaves no process around to run that repair, so
//! the torn bytes survive on disk. Recovery therefore truncates the
//! file back to its intact prefix ([`truncate_torn_tail`]) before the
//! journal is reopened for appending — otherwise the first post-restart
//! append would bury the tear mid-file, and a second crash would
//! silently lose every acknowledged record behind it.
//!
//! After a successful snapshot the records it covers are dead weight;
//! [`Journal::compact`] atomically rewrites the uncovered suffix so the
//! file stays O(batches since the last snapshot) instead of O(lifetime).

use std::fs::{File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

/// Fail point: simulates a torn append (partial write followed by an
/// I/O error) so the truncation-repair path stays exercised.
pub const POINT_JOURNAL_APPEND: &str = "serve/journal/append";

/// Fail point: skips a post-snapshot journal compaction (degradation:
/// the journal keeps its covered prefix until the next compaction).
pub const POINT_JOURNAL_COMPACT: &str = "serve/journal/compact";

/// IEEE CRC-32, bitwise (no table): the journal appends are fsync-bound,
/// so checksum speed is irrelevant and zero static data keeps it simple.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc: u32 = !0;
    for &b in bytes {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// Kind tag of a journal record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecordKind {
    /// A batch body to (re-)apply.
    Batch,
    /// A re-optimization pass ran at this point in the sequence.
    Reopt,
    /// The record with this seq permanently failed and was rolled back.
    Rollback,
}

/// One decoded journal record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalRecord {
    /// Batch sequence number.
    pub seq: u64,
    /// Batch body or rollback marker.
    pub kind: RecordKind,
    /// Relative work-budget units granted to the batch; 0 = unbounded.
    pub budget: u64,
    /// Bit pattern of the batch's effective `absorb_epsilon` (`f64`
    /// bits; 0 = the exact free-absorption criterion). Stored as bits so
    /// the record stays `Eq` and replay is bit-faithful.
    pub eps_bits: u64,
    /// The batch body bytes (empty for rollbacks).
    pub payload: Vec<u8>,
}

impl JournalRecord {
    /// The effective `absorb_epsilon` this record was applied under.
    pub fn epsilon(&self) -> f64 {
        f64::from_bits(self.eps_bits)
    }
}

/// Append-only journal handle. Appends are durable (fsynced) before
/// they return; a failed append truncates its torn bytes away so the
/// file never grows past a bad record.
pub struct Journal {
    path: PathBuf,
    file: File,
    /// Set when a failed append could not be truncated back out: the
    /// logical tail is unknown, so further appends are refused rather
    /// than risk burying the tear under acknowledged records.
    poisoned: bool,
}

impl Journal {
    /// Opens (creating if absent) the journal at `path` for appending.
    pub fn open(path: &Path) -> io::Result<Self> {
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        Ok(Journal {
            path: path.to_path_buf(),
            file,
            poisoned: false,
        })
    }

    /// Path this journal writes to.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends one record and fsyncs. The record is visible to a
    /// post-crash replay only after this returns. On failure (ENOSPC,
    /// I/O error mid-write) the file is truncated back to its
    /// pre-append length, so the torn record can never end up buried
    /// mid-file where `read_journal` would stop at it and hide every
    /// later acknowledged record from replay.
    pub fn append(
        &mut self,
        seq: u64,
        kind: RecordKind,
        budget: u64,
        epsilon: f64,
        payload: &[u8],
    ) -> io::Result<()> {
        if self.poisoned {
            return Err(io::Error::other(
                "journal is poisoned: an earlier torn append could not be repaired",
            ));
        }
        let buf = encode_record(seq, kind, budget, epsilon, payload);
        let start = self.file.metadata()?.len();
        let written = if kanon_fault::armed() && kanon_fault::fires(POINT_JOURNAL_APPEND) {
            // Injected torn append: half the record lands, then the
            // device "fails" — exactly what a crash mid-write leaves.
            self.file
                .write_all(&buf[..buf.len() / 2])
                .and_then(|()| Err(io::Error::other("fault injected: serve/journal/append")))
        } else {
            self.file
                .write_all(&buf)
                .and_then(|()| self.file.sync_all())
        };
        if let Err(e) = written {
            if self
                .file
                .set_len(start)
                .and_then(|()| self.file.sync_all())
                .is_err()
            {
                self.poisoned = true;
            }
            return Err(e);
        }
        Ok(())
    }

    /// Compacts the journal after a snapshot: every record with
    /// `seq <= covered_seq` is covered by the snapshot and atomically
    /// rewritten away (tmp + fsync + rename), bounding the file to the
    /// records a recovery still needs. Returns the bytes reclaimed, or
    /// `None` when the `serve/journal/compact` fail point skipped the
    /// pass — a skipped compaction only keeps dead records around, it
    /// never loses one.
    ///
    /// The rewrite re-encodes the decoded intact records, so it also
    /// discards any torn tail and clears a poisoned handle: after a
    /// compaction the on-disk file is exactly the intact uncovered
    /// suffix.
    pub fn compact(&mut self, covered_seq: u64) -> io::Result<Option<u64>> {
        if kanon_fault::armed() && kanon_fault::fires(POINT_JOURNAL_COMPACT) {
            return Ok(None);
        }
        let (records, _) = intact_prefix(&self.path)?;
        let old_len = self.file.metadata()?.len();
        let mut kept = Vec::new();
        for rec in records.iter().filter(|r| r.seq > covered_seq) {
            kept.extend_from_slice(&encode_record(
                rec.seq,
                rec.kind,
                rec.budget,
                rec.epsilon(),
                &rec.payload,
            ));
        }
        if kept.len() as u64 == old_len {
            return Ok(Some(0)); // nothing covered, no torn tail: leave as is
        }
        let tmp = self.path.with_extension("compact-tmp");
        {
            let mut f = File::create(&tmp)?;
            f.write_all(&kept)?;
            f.sync_all()?;
        }
        std::fs::rename(&tmp, &self.path)?;
        // The old handle points at the unlinked inode; reopen on the
        // compacted file so later appends land in it.
        self.file = OpenOptions::new().append(true).open(&self.path)?;
        self.poisoned = false;
        Ok(Some(old_len.saturating_sub(kept.len() as u64)))
    }
}

/// Encodes one record in its on-disk form (`KJ1` when ε = 0, `KJ2`
/// otherwise — see the module docs).
fn encode_record(seq: u64, kind: RecordKind, budget: u64, epsilon: f64, payload: &[u8]) -> Vec<u8> {
    let tag = match kind {
        RecordKind::Batch => 'B',
        RecordKind::Reopt => 'O',
        RecordKind::Rollback => 'R',
    };
    let eps_bits = epsilon.to_bits();
    let header = if eps_bits == 0 {
        format!(
            "KJ1 {seq} {tag} {budget} {len} {crc:08x}\n",
            len = payload.len(),
            crc = crc32(payload)
        )
    } else {
        format!(
            "KJ2 {seq} {tag} {budget} {eps_bits:016x} {len} {crc:08x}\n",
            len = payload.len(),
            crc = crc32(payload)
        )
    };
    let mut buf = Vec::with_capacity(header.len() + payload.len() + 1);
    buf.extend_from_slice(header.as_bytes());
    buf.extend_from_slice(payload);
    buf.push(b'\n');
    buf
}

/// Truncates a crash-torn tail off the journal at `path`, fsyncing the
/// result, and returns the number of bytes removed (0 when the file is
/// clean or missing). Recovery must run this *before* reopening the
/// journal for appending: a crash mid-append leaves torn bytes at the
/// tail, and appending past them would bury the tear mid-file where
/// [`read_journal`]'s stop-at-first-bad-record rule hides every later
/// acknowledged record from the next recovery.
pub fn truncate_torn_tail(path: &Path) -> io::Result<u64> {
    let (_, intact_len) = intact_prefix(path)?;
    let file = match OpenOptions::new().write(true).open(path) {
        Ok(f) => f,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(0),
        Err(e) => return Err(e),
    };
    let total = file.metadata()?.len();
    if total == intact_len {
        return Ok(0);
    }
    file.set_len(intact_len)?;
    file.sync_all()?;
    Ok(total - intact_len)
}

/// Checks the journal's sequence discipline: each record's `seq` must
/// be strictly greater than its predecessor's, except that a rollback
/// marker repeats the `seq` of the record it cancels (always the
/// immediately preceding one — the daemon rolls a failed record back
/// before journaling anything else). Gaps are fine: rolled-back and
/// snapshot-covered sequence numbers are burned, never reused.
///
/// A violation means the file was edited or assembled out of order —
/// replaying it would double-apply or misorder state, so recovery
/// refuses. Returns a diagnostic naming the offending record.
pub fn validate_order(records: &[JournalRecord]) -> Result<(), String> {
    for (idx, pair) in records.windows(2).enumerate() {
        let (prev, rec) = (&pair[0], &pair[1]);
        if rec.seq > prev.seq {
            continue;
        }
        if rec.kind == RecordKind::Rollback
            && rec.seq == prev.seq
            && prev.kind != RecordKind::Rollback
        {
            continue; // the marker cancelling the record right before it
        }
        let what = match rec.kind {
            RecordKind::Batch => "batch",
            RecordKind::Reopt => "reopt",
            RecordKind::Rollback => "rollback",
        };
        return Err(format!(
            "journal record {} ({what} seq={}) does not advance past its \
             predecessor (seq={}): the journal is corrupt or was reordered",
            idx + 1,
            rec.seq,
            prev.seq
        ));
    }
    Ok(())
}

/// Reads every intact record from `path`. Missing file = empty journal.
/// Reading stops at the first truncated or corrupt record — a torn tail
/// from a crash mid-append — and everything before it is returned.
pub fn read_journal(path: &Path) -> io::Result<Vec<JournalRecord>> {
    Ok(intact_prefix(path)?.0)
}

/// Like [`read_journal`], but also returns the byte length of the
/// intact prefix — the offset recovery truncates a torn tail back to.
fn intact_prefix(path: &Path) -> io::Result<(Vec<JournalRecord>, u64)> {
    let mut bytes = Vec::new();
    match File::open(path) {
        Ok(mut f) => {
            f.read_to_end(&mut bytes)?;
        }
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok((Vec::new(), 0)),
        Err(e) => return Err(e),
    }
    let mut records = Vec::new();
    let mut pos = 0usize;
    while pos < bytes.len() {
        let Some(rec_len) = decode_record(&bytes[pos..], &mut records) else {
            break; // torn tail: keep what we have
        };
        pos += rec_len;
    }
    Ok((records, pos as u64))
}

/// Decodes one record from the front of `bytes`, pushing it onto `out`.
/// Returns the record's encoded length, or `None` if the front is not a
/// complete intact record.
fn decode_record(bytes: &[u8], out: &mut Vec<JournalRecord>) -> Option<usize> {
    let nl = bytes.iter().position(|&b| b == b'\n')?;
    let header = std::str::from_utf8(&bytes[..nl]).ok()?;
    let mut words = header.split(' ');
    let magic = words.next()?;
    if magic != "KJ1" && magic != "KJ2" {
        return None;
    }
    let seq: u64 = words.next()?.parse().ok()?;
    let kind = match words.next()? {
        "B" => RecordKind::Batch,
        "O" => RecordKind::Reopt,
        "R" => RecordKind::Rollback,
        _ => return None,
    };
    let budget: u64 = words.next()?.parse().ok()?;
    let eps_bits: u64 = if magic == "KJ2" {
        let bits = u64::from_str_radix(words.next()?, 16).ok()?;
        // ε = 0 is spelled KJ1; a KJ2 record claiming 0 is malformed.
        if bits == 0 {
            return None;
        }
        bits
    } else {
        0
    };
    let len: usize = words.next()?.parse().ok()?;
    let crc: u32 = u32::from_str_radix(words.next()?, 16).ok()?;
    if words.next().is_some() {
        return None;
    }
    let start = nl + 1;
    let end = start.checked_add(len)?;
    // Payload must be followed by its trailing newline.
    if end >= bytes.len() || bytes[end] != b'\n' {
        return None;
    }
    let payload = &bytes[start..end];
    if crc32(payload) != crc {
        return None;
    }
    out.push(JournalRecord {
        seq,
        kind,
        budget,
        eps_bits,
        payload: payload.to_vec(),
    });
    Some(end + 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("kanon-journal-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("journal.log")
    }

    #[test]
    fn crc32_matches_reference_vectors() {
        // Standard IEEE check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn records_round_trip() {
        let path = tmp("roundtrip");
        let mut j = Journal::open(&path).unwrap();
        j.append(1, RecordKind::Batch, 500, 0.0, b"a,b\nc,d\n")
            .unwrap();
        j.append(2, RecordKind::Rollback, 0, 0.0, b"").unwrap();
        j.append(3, RecordKind::Batch, 0, 0.0, b"payload with KJ1 inside\n")
            .unwrap();
        j.append(4, RecordKind::Reopt, 0, 0.0, b"").unwrap();
        drop(j);
        let recs = read_journal(&path).unwrap();
        assert_eq!(recs.len(), 4);
        assert_eq!(recs[0].seq, 1);
        assert_eq!(recs[0].kind, RecordKind::Batch);
        assert_eq!(recs[0].budget, 500);
        assert_eq!(recs[0].payload, b"a,b\nc,d\n");
        assert_eq!(recs[1].kind, RecordKind::Rollback);
        assert_eq!(recs[2].payload, b"payload with KJ1 inside\n");
        assert_eq!(recs[3].kind, RecordKind::Reopt);
        assert_eq!(recs[3].seq, 4);
        assert!(recs[3].payload.is_empty());
    }

    #[test]
    fn failed_append_truncates_the_torn_record_away() {
        let path = tmp("torn-append");
        let mut j = Journal::open(&path).unwrap();
        j.append(1, RecordKind::Batch, 0, 0.0, b"first\n").unwrap();
        let len_before = std::fs::metadata(&path).unwrap().len();
        {
            let _g = kanon_fault::scoped(&format!("{POINT_JOURNAL_APPEND}=once:1"));
            j.append(2, RecordKind::Batch, 0, 0.0, b"second\n")
                .unwrap_err();
        }
        // The partial record was rolled back — the file is exactly as
        // long as before the failed append, not torn mid-file.
        assert_eq!(std::fs::metadata(&path).unwrap().len(), len_before);
        // A later successful append lands at the repaired tail, so
        // nothing acknowledged ever hides behind torn bytes.
        j.append(2, RecordKind::Batch, 0, 0.0, b"second again\n")
            .unwrap();
        drop(j);
        let recs = read_journal(&path).unwrap();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[1].seq, 2);
        assert_eq!(recs[1].payload, b"second again\n");
    }

    #[test]
    fn missing_journal_reads_empty() {
        let path = tmp("missing");
        assert!(read_journal(&path).unwrap().is_empty());
    }

    #[test]
    fn torn_tail_is_discarded_at_every_truncation_point() {
        let path = tmp("torn");
        let mut j = Journal::open(&path).unwrap();
        j.append(1, RecordKind::Batch, 0, 0.0, b"first\n").unwrap();
        j.append(2, RecordKind::Batch, 7, 0.0, b"second batch body\n")
            .unwrap();
        drop(j);
        let full = std::fs::read(&path).unwrap();
        let first_len = {
            let mut out = Vec::new();
            decode_record(&full, &mut out).unwrap()
        };
        // Truncating anywhere inside the second record must yield
        // exactly the first record back.
        for cut in first_len + 1..full.len() {
            std::fs::write(&path, &full[..cut]).unwrap();
            let recs = read_journal(&path).unwrap();
            assert_eq!(recs.len(), 1, "cut at {cut}");
            assert_eq!(recs[0].seq, 1);
        }
    }

    #[test]
    fn corrupt_crc_stops_replay() {
        let path = tmp("crc");
        let mut j = Journal::open(&path).unwrap();
        j.append(1, RecordKind::Batch, 0, 0.0, b"good\n").unwrap();
        j.append(2, RecordKind::Batch, 0, 0.0, b"flipped\n")
            .unwrap();
        drop(j);
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip one payload byte in the second record.
        let n = bytes.len();
        bytes[n - 3] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        let recs = read_journal(&path).unwrap();
        assert_eq!(recs.len(), 1);
    }

    #[test]
    fn epsilon_records_round_trip_in_kj2_form() {
        let path = tmp("eps");
        let mut j = Journal::open(&path).unwrap();
        j.append(1, RecordKind::Batch, 0, 0.0, b"plain\n").unwrap();
        j.append(2, RecordKind::Batch, 40, 0.05, b"eps\n").unwrap();
        drop(j);
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.starts_with("KJ1 1 B"), "{text}");
        assert!(text.contains(&format!("KJ2 2 B 40 {:016x}", 0.05f64.to_bits())));
        let recs = read_journal(&path).unwrap();
        assert_eq!(recs[0].eps_bits, 0);
        assert_eq!(recs[1].eps_bits, 0.05f64.to_bits());
        assert_eq!(recs[1].budget, 40);
        assert_eq!(recs[1].payload, b"eps\n");
    }

    #[test]
    fn truncate_torn_tail_removes_exactly_the_tear() {
        let path = tmp("truncate");
        assert_eq!(truncate_torn_tail(&path).unwrap(), 0); // missing file
        let mut j = Journal::open(&path).unwrap();
        j.append(1, RecordKind::Batch, 0, 0.0, b"first\n").unwrap();
        j.append(2, RecordKind::Batch, 0, 0.0, b"second\n").unwrap();
        drop(j);
        let full = std::fs::read(&path).unwrap();
        let first_len = {
            let mut out = Vec::new();
            decode_record(&full, &mut out).unwrap()
        };
        assert_eq!(truncate_torn_tail(&path).unwrap(), 0); // clean file untouched
        assert_eq!(std::fs::read(&path).unwrap(), full);
        // Tear the second record, repair, and confirm the intact prefix
        // survives byte-identically.
        let cut = full.len() - 3;
        std::fs::write(&path, &full[..cut]).unwrap();
        assert_eq!(truncate_torn_tail(&path).unwrap(), (cut - first_len) as u64);
        assert_eq!(std::fs::read(&path).unwrap(), &full[..first_len]);
        // An append now lands at the repaired tail, not behind a tear.
        let mut j = Journal::open(&path).unwrap();
        j.append(2, RecordKind::Batch, 0, 0.0, b"second again\n")
            .unwrap();
        drop(j);
        let recs = read_journal(&path).unwrap();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[1].payload, b"second again\n");
    }

    fn rec(seq: u64, kind: RecordKind) -> JournalRecord {
        JournalRecord {
            seq,
            kind,
            budget: 0,
            eps_bits: 0,
            payload: Vec::new(),
        }
    }

    #[test]
    fn validate_order_accepts_gaps_and_rollback_pairs() {
        let b = |s| rec(s, RecordKind::Batch);
        assert!(validate_order(&[]).is_ok());
        assert!(validate_order(&[b(1), b(2), b(5)]).is_ok()); // gaps fine
                                                              // A rollback cancelling the record right before it repeats its seq.
        assert!(validate_order(&[
            b(1),
            rec(2, RecordKind::Reopt),
            rec(2, RecordKind::Rollback),
            b(3)
        ])
        .is_ok());
    }

    #[test]
    fn validate_order_rejects_duplicate_and_decreasing_seq() {
        let b = |s| rec(s, RecordKind::Batch);
        let err = validate_order(&[b(1), b(1)]).unwrap_err();
        assert!(err.contains("record 1"), "{err}");
        assert!(err.contains("seq=1"), "{err}");
        let err = validate_order(&[b(1), b(3), b(2)]).unwrap_err();
        assert!(err.contains("record 2"), "{err}");
        // A rollback not paired with its target record is also bogus.
        let err = validate_order(&[b(2), rec(1, RecordKind::Rollback)]).unwrap_err();
        assert!(err.contains("rollback seq=1"), "{err}");
        // Two rollbacks for the same seq can never be produced.
        let err = validate_order(&[
            b(1),
            rec(1, RecordKind::Rollback),
            rec(1, RecordKind::Rollback),
        ])
        .unwrap_err();
        assert!(err.contains("record 2"), "{err}");
    }

    #[test]
    fn compact_drops_covered_records_atomically() {
        let path = tmp("compact");
        let mut j = Journal::open(&path).unwrap();
        for seq in 1..=5u64 {
            j.append(
                seq,
                RecordKind::Batch,
                0,
                0.0,
                format!("row{seq}\n").as_bytes(),
            )
            .unwrap();
        }
        let before = std::fs::metadata(&path).unwrap().len();
        // A fault-skipped compaction leaves the file untouched.
        {
            let _g = kanon_fault::scoped(&format!("{POINT_JOURNAL_COMPACT}=once:1"));
            assert_eq!(j.compact(3).unwrap(), None);
        }
        assert_eq!(std::fs::metadata(&path).unwrap().len(), before);
        // The real pass drops the covered prefix and keeps the suffix
        // byte-identical.
        let freed = j.compact(3).unwrap().unwrap();
        assert!(freed > 0);
        assert_eq!(std::fs::metadata(&path).unwrap().len(), before - freed);
        let recs = read_journal(&path).unwrap();
        assert_eq!(recs.iter().map(|r| r.seq).collect::<Vec<_>>(), vec![4, 5]);
        assert_eq!(recs[0].payload, b"row4\n");
        // Appends continue into the compacted file (not the old inode).
        j.append(6, RecordKind::Batch, 0, 0.0, b"row6\n").unwrap();
        drop(j);
        let recs = read_journal(&path).unwrap();
        assert_eq!(
            recs.iter().map(|r| r.seq).collect::<Vec<_>>(),
            vec![4, 5, 6]
        );
        // Compacting with nothing covered is a no-op.
        let mut j = Journal::open(&path).unwrap();
        assert_eq!(j.compact(0).unwrap(), Some(0));
        assert_eq!(
            read_journal(&path).unwrap().len(),
            3,
            "no-op compaction must keep every record"
        );
    }

    #[test]
    fn appends_after_reopen_continue_the_log() {
        let path = tmp("reopen");
        let mut j = Journal::open(&path).unwrap();
        j.append(1, RecordKind::Batch, 0, 0.0, b"one\n").unwrap();
        drop(j);
        let mut j = Journal::open(&path).unwrap();
        j.append(2, RecordKind::Batch, 0, 0.0, b"two\n").unwrap();
        drop(j);
        let recs = read_journal(&path).unwrap();
        assert_eq!(recs.iter().map(|r| r.seq).collect::<Vec<_>>(), vec![1, 2]);
    }
}
