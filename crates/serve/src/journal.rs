//! Write-ahead batch journal.
//!
//! Every state mutation — an accepted batch or a re-optimization pass —
//! is appended (and fsynced) to `journal.log` *before* it is applied to
//! in-memory state, so a `kill -9` at any instant loses at most work
//! that was never acknowledged. On restart the daemon replays the
//! journal on top of the latest snapshot and reaches byte-identical
//! state — replay re-runs the same deterministic clustering code under
//! the same recorded work budget.
//!
//! ## Record format
//!
//! One record per line-pair, text header + raw payload:
//!
//! ```text
//! KJ1 <seq> <kind> <budget> <len> <crc32>\n
//! <payload bytes>\n
//! ```
//!
//! * `seq` — monotonically increasing batch sequence number.
//! * `kind` — `B` (batch body follows), `O` (a re-optimization pass ran
//!   at this point in the sequence; payload empty), or `R` (the record
//!   with this `seq` was rolled back after a permanent failure; payload
//!   empty).
//! * `budget` — the *relative* work-budget units granted to the batch
//!   (`0` = unbounded). Relative units make replay independent of
//!   process history: each apply runs under a fresh collector.
//! * `len`/`crc32` — payload byte length and IEEE CRC-32 (hex).
//!
//! A torn tail (truncated or CRC-mismatched final record, the only
//! corruption a crash mid-append can produce) is detected and
//! discarded; anything after the first bad record is ignored. To keep
//! "torn record" synonymous with "final record", a *failed* append
//! truncates the file back to its pre-append length before returning —
//! otherwise a later successful append would bury the torn bytes
//! mid-file and silently hide every record after them from replay. If
//! that repair itself fails the handle is poisoned and refuses further
//! appends, so no acknowledged record can ever land beyond a tear.

use std::fs::{File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

/// Fail point: simulates a torn append (partial write followed by an
/// I/O error) so the truncation-repair path stays exercised.
pub const POINT_JOURNAL_APPEND: &str = "serve/journal/append";

/// IEEE CRC-32, bitwise (no table): the journal appends are fsync-bound,
/// so checksum speed is irrelevant and zero static data keeps it simple.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc: u32 = !0;
    for &b in bytes {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// Kind tag of a journal record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecordKind {
    /// A batch body to (re-)apply.
    Batch,
    /// A re-optimization pass ran at this point in the sequence.
    Reopt,
    /// The record with this seq permanently failed and was rolled back.
    Rollback,
}

/// One decoded journal record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalRecord {
    /// Batch sequence number.
    pub seq: u64,
    /// Batch body or rollback marker.
    pub kind: RecordKind,
    /// Relative work-budget units granted to the batch; 0 = unbounded.
    pub budget: u64,
    /// The batch body bytes (empty for rollbacks).
    pub payload: Vec<u8>,
}

/// Append-only journal handle. Appends are durable (fsynced) before
/// they return; a failed append truncates its torn bytes away so the
/// file never grows past a bad record.
pub struct Journal {
    path: PathBuf,
    file: File,
    /// Set when a failed append could not be truncated back out: the
    /// logical tail is unknown, so further appends are refused rather
    /// than risk burying the tear under acknowledged records.
    poisoned: bool,
}

impl Journal {
    /// Opens (creating if absent) the journal at `path` for appending.
    pub fn open(path: &Path) -> io::Result<Self> {
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        Ok(Journal {
            path: path.to_path_buf(),
            file,
            poisoned: false,
        })
    }

    /// Path this journal writes to.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends one record and fsyncs. The record is visible to a
    /// post-crash replay only after this returns. On failure (ENOSPC,
    /// I/O error mid-write) the file is truncated back to its
    /// pre-append length, so the torn record can never end up buried
    /// mid-file where `read_journal` would stop at it and hide every
    /// later acknowledged record from replay.
    pub fn append(
        &mut self,
        seq: u64,
        kind: RecordKind,
        budget: u64,
        payload: &[u8],
    ) -> io::Result<()> {
        if self.poisoned {
            return Err(io::Error::other(
                "journal is poisoned: an earlier torn append could not be repaired",
            ));
        }
        let tag = match kind {
            RecordKind::Batch => 'B',
            RecordKind::Reopt => 'O',
            RecordKind::Rollback => 'R',
        };
        let header = format!(
            "KJ1 {seq} {tag} {budget} {len} {crc:08x}\n",
            len = payload.len(),
            crc = crc32(payload)
        );
        let mut buf = Vec::with_capacity(header.len() + payload.len() + 1);
        buf.extend_from_slice(header.as_bytes());
        buf.extend_from_slice(payload);
        buf.push(b'\n');
        let start = self.file.metadata()?.len();
        let written = if kanon_fault::armed() && kanon_fault::fires(POINT_JOURNAL_APPEND) {
            // Injected torn append: half the record lands, then the
            // device "fails" — exactly what a crash mid-write leaves.
            self.file
                .write_all(&buf[..buf.len() / 2])
                .and_then(|()| Err(io::Error::other("fault injected: serve/journal/append")))
        } else {
            self.file
                .write_all(&buf)
                .and_then(|()| self.file.sync_all())
        };
        if let Err(e) = written {
            if self
                .file
                .set_len(start)
                .and_then(|()| self.file.sync_all())
                .is_err()
            {
                self.poisoned = true;
            }
            return Err(e);
        }
        Ok(())
    }
}

/// Reads every intact record from `path`. Missing file = empty journal.
/// Reading stops at the first truncated or corrupt record — a torn tail
/// from a crash mid-append — and everything before it is returned.
pub fn read_journal(path: &Path) -> io::Result<Vec<JournalRecord>> {
    let mut bytes = Vec::new();
    match File::open(path) {
        Ok(mut f) => {
            f.read_to_end(&mut bytes)?;
        }
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(e),
    }
    let mut records = Vec::new();
    let mut pos = 0usize;
    while pos < bytes.len() {
        let Some(rec_len) = decode_record(&bytes[pos..], &mut records) else {
            break; // torn tail: keep what we have
        };
        pos += rec_len;
    }
    Ok(records)
}

/// Decodes one record from the front of `bytes`, pushing it onto `out`.
/// Returns the record's encoded length, or `None` if the front is not a
/// complete intact record.
fn decode_record(bytes: &[u8], out: &mut Vec<JournalRecord>) -> Option<usize> {
    let nl = bytes.iter().position(|&b| b == b'\n')?;
    let header = std::str::from_utf8(&bytes[..nl]).ok()?;
    let mut words = header.split(' ');
    if words.next()? != "KJ1" {
        return None;
    }
    let seq: u64 = words.next()?.parse().ok()?;
    let kind = match words.next()? {
        "B" => RecordKind::Batch,
        "O" => RecordKind::Reopt,
        "R" => RecordKind::Rollback,
        _ => return None,
    };
    let budget: u64 = words.next()?.parse().ok()?;
    let len: usize = words.next()?.parse().ok()?;
    let crc: u32 = u32::from_str_radix(words.next()?, 16).ok()?;
    if words.next().is_some() {
        return None;
    }
    let start = nl + 1;
    let end = start.checked_add(len)?;
    // Payload must be followed by its trailing newline.
    if end >= bytes.len() || bytes[end] != b'\n' {
        return None;
    }
    let payload = &bytes[start..end];
    if crc32(payload) != crc {
        return None;
    }
    out.push(JournalRecord {
        seq,
        kind,
        budget,
        payload: payload.to_vec(),
    });
    Some(end + 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("kanon-journal-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("journal.log")
    }

    #[test]
    fn crc32_matches_reference_vectors() {
        // Standard IEEE check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn records_round_trip() {
        let path = tmp("roundtrip");
        let mut j = Journal::open(&path).unwrap();
        j.append(1, RecordKind::Batch, 500, b"a,b\nc,d\n").unwrap();
        j.append(2, RecordKind::Rollback, 0, b"").unwrap();
        j.append(3, RecordKind::Batch, 0, b"payload with KJ1 inside\n")
            .unwrap();
        j.append(4, RecordKind::Reopt, 0, b"").unwrap();
        drop(j);
        let recs = read_journal(&path).unwrap();
        assert_eq!(recs.len(), 4);
        assert_eq!(recs[0].seq, 1);
        assert_eq!(recs[0].kind, RecordKind::Batch);
        assert_eq!(recs[0].budget, 500);
        assert_eq!(recs[0].payload, b"a,b\nc,d\n");
        assert_eq!(recs[1].kind, RecordKind::Rollback);
        assert_eq!(recs[2].payload, b"payload with KJ1 inside\n");
        assert_eq!(recs[3].kind, RecordKind::Reopt);
        assert_eq!(recs[3].seq, 4);
        assert!(recs[3].payload.is_empty());
    }

    #[test]
    fn failed_append_truncates_the_torn_record_away() {
        let path = tmp("torn-append");
        let mut j = Journal::open(&path).unwrap();
        j.append(1, RecordKind::Batch, 0, b"first\n").unwrap();
        let len_before = std::fs::metadata(&path).unwrap().len();
        {
            let _g = kanon_fault::scoped(&format!("{POINT_JOURNAL_APPEND}=once:1"));
            j.append(2, RecordKind::Batch, 0, b"second\n").unwrap_err();
        }
        // The partial record was rolled back — the file is exactly as
        // long as before the failed append, not torn mid-file.
        assert_eq!(std::fs::metadata(&path).unwrap().len(), len_before);
        // A later successful append lands at the repaired tail, so
        // nothing acknowledged ever hides behind torn bytes.
        j.append(2, RecordKind::Batch, 0, b"second again\n")
            .unwrap();
        drop(j);
        let recs = read_journal(&path).unwrap();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[1].seq, 2);
        assert_eq!(recs[1].payload, b"second again\n");
    }

    #[test]
    fn missing_journal_reads_empty() {
        let path = tmp("missing");
        assert!(read_journal(&path).unwrap().is_empty());
    }

    #[test]
    fn torn_tail_is_discarded_at_every_truncation_point() {
        let path = tmp("torn");
        let mut j = Journal::open(&path).unwrap();
        j.append(1, RecordKind::Batch, 0, b"first\n").unwrap();
        j.append(2, RecordKind::Batch, 7, b"second batch body\n")
            .unwrap();
        drop(j);
        let full = std::fs::read(&path).unwrap();
        let first_len = {
            let mut out = Vec::new();
            decode_record(&full, &mut out).unwrap()
        };
        // Truncating anywhere inside the second record must yield
        // exactly the first record back.
        for cut in first_len + 1..full.len() {
            std::fs::write(&path, &full[..cut]).unwrap();
            let recs = read_journal(&path).unwrap();
            assert_eq!(recs.len(), 1, "cut at {cut}");
            assert_eq!(recs[0].seq, 1);
        }
    }

    #[test]
    fn corrupt_crc_stops_replay() {
        let path = tmp("crc");
        let mut j = Journal::open(&path).unwrap();
        j.append(1, RecordKind::Batch, 0, b"good\n").unwrap();
        j.append(2, RecordKind::Batch, 0, b"flipped\n").unwrap();
        drop(j);
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip one payload byte in the second record.
        let n = bytes.len();
        bytes[n - 3] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        let recs = read_journal(&path).unwrap();
        assert_eq!(recs.len(), 1);
    }

    #[test]
    fn appends_after_reopen_continue_the_log() {
        let path = tmp("reopen");
        let mut j = Journal::open(&path).unwrap();
        j.append(1, RecordKind::Batch, 0, b"one\n").unwrap();
        drop(j);
        let mut j = Journal::open(&path).unwrap();
        j.append(2, RecordKind::Batch, 0, b"two\n").unwrap();
        drop(j);
        let recs = read_journal(&path).unwrap();
        assert_eq!(recs.iter().map(|r| r.seq).collect::<Vec<_>>(), vec![1, 2]);
    }
}
