//! `kanon-serve`: a crash-safe incremental anonymization daemon.
//!
//! The daemon holds the hierarchies, the packed signature arena and the
//! engine's clustering state resident, and anonymizes appended
//! micro-batches incrementally over a tiny length-prefixed protocol
//! ([`proto`]). Robustness is the point:
//!
//! * **Deadlines** — a `BATCH deadline_ms=N` request maps its deadline
//!   onto the deterministic work budget (`N × KANON_SERVE_WORK_RATE`
//!   units); a timed-out apply commits a *valid* `BudgetExhausted`
//!   partial instead of failing.
//! * **Retries** — transient faults (`FaultInjected`, `WorkerPanic`)
//!   are retried with deterministic exponential backoff; permanent
//!   failures roll the batch back (journal `R` marker) and leave state
//!   untouched.
//! * **Recovery** — every batch is journaled (fsync) *before* it is
//!   applied ([`journal`]), and state snapshots periodically
//!   ([`state`]); a `kill -9` at any instant recovers to byte-identical
//!   state on restart — including a *second* `kill -9` after a torn
//!   tail: recovery truncates the journal to its intact prefix before
//!   anything reopens it for append, so post-restart acknowledgments
//!   can never land behind crash garbage.
//! * **Compaction** — after each successful snapshot the journal is
//!   atomically rewritten down to the records the snapshot does not
//!   cover, so disk usage is O(batches since last snapshot) instead of
//!   O(lifetime).
//! * **Concurrent reads** — batches stay strictly serialized behind the
//!   single-writer core lock, but `OUTPUT`/`STATS`/`HEALTH` are served
//!   from per-connection threads against an immutable published view
//!   that is swapped wholesale after every commit: a slow reader never
//!   blocks ingestion, and no reader ever observes a mid-commit state.
//! * **Degradation** — bad rows follow the `--on-bad-row` policy, a
//!   failed snapshot or compaction only lengthens recovery, and the
//!   `STATS`/`HEALTH` endpoints serve the aggregated `kanon-obs`
//!   report.
//!
//! Fail points: `serve/accept`, `serve/batch/apply`,
//! `serve/journal/append`, `serve/journal/compact`,
//! `serve/journal/replay`, `serve/snapshot/write` (see
//! `kanon_fault::CATALOGUE`).

#![warn(missing_docs)]
#![deny(unsafe_code)]
// kanon-lint: allow(L004) the self-pipe signal watcher needs four libc
// calls (signal/pipe/read/write) that have no safe-std equivalent; all
// unsafe is confined to src/signal.rs behind per-call SAFETY arguments,
// and the rest of the crate stays deny(unsafe_code).

use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::net::TcpListener;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

use kanon_algos::fallible::error_from_panic;
use kanon_core::error::{KanonError, KanonResult};
use kanon_core::table::Table;
use kanon_obs::{count, count_runtime, Collector, Counter, Report, RuntimeCounter};

pub mod journal;
pub mod proto;
#[allow(unsafe_code)]
pub mod signal;
pub mod state;

use journal::{Journal, RecordKind};
use proto::{parse_request, read_frame, write_frame, Request};
use state::{ServeConfig, ServeState};

/// Fail point: drops an incoming connection before it is served.
pub const POINT_ACCEPT: &str = "serve/accept";

/// Name of the bound-address file the daemon writes inside the state
/// directory (clients of `--listen 127.0.0.1:0` read the port here).
pub const ADDR_FILE: &str = "serve.addr";
/// Name of the write-ahead journal file inside the state directory.
pub const JOURNAL_FILE: &str = "journal.log";
/// Name of the snapshot file inside the state directory.
pub const SNAPSHOT_FILE: &str = "state.snap";

/// Runtime options of a daemon instance (protocol/lifecycle knobs; the
/// anonymization parameters live in [`state::ServeConfig`]).
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Listen address: `host:port` for TCP, or a filesystem path
    /// (anything containing `/`) for a Unix socket.
    pub listen: String,
    /// Directory holding journal, snapshots and the address file.
    pub state_dir: PathBuf,
    /// Snapshot every N applied batches (0 = never).
    pub snapshot_every: u64,
    /// Retry attempts for transient faults (`KANON_SERVE_RETRIES`).
    pub retries: u64,
    /// Base backoff between retries, doubled per attempt
    /// (`KANON_SERVE_BACKOFF_MS`).
    pub backoff_ms: u64,
    /// Work-budget units granted per deadline millisecond
    /// (`KANON_SERVE_WORK_RATE`).
    pub work_rate: u64,
    /// Maximum accepted frame size in bytes (`KANON_SERVE_MAX_FRAME`).
    pub max_frame: u64,
    /// Per-read idle timeout on accepted connections, in milliseconds
    /// (`KANON_SERVE_IDLE_TIMEOUT_MS`; 0 disables). Connections get
    /// their own threads, but a client that connects and then sends
    /// nothing would otherwise pin a thread (and at shutdown, a scope
    /// join) forever.
    pub idle_timeout_ms: u64,
}

impl ServeOptions {
    /// Options with the `KANON_SERVE_*` environment defaults and an
    /// ephemeral localhost listener.
    pub fn new(state_dir: PathBuf) -> ServeOptions {
        ServeOptions {
            listen: "127.0.0.1:0".to_string(),
            state_dir,
            snapshot_every: kanon_core::config::serve_snapshot_every(),
            retries: kanon_core::config::serve_retries(),
            backoff_ms: kanon_core::config::serve_backoff_ms(),
            work_rate: kanon_core::config::serve_work_rate(),
            max_frame: kanon_core::config::serve_max_frame(),
            idle_timeout_ms: kanon_core::config::serve_idle_timeout_ms(),
        }
    }
}

/// What the connection loop should do after a response.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Control {
    Continue,
    Shutdown,
}

/// A bound listener: TCP or Unix socket.
pub enum Listener {
    /// A TCP listener (`host:port`).
    Tcp(TcpListener),
    /// A Unix-domain socket listener (any `--listen` value with a `/`).
    #[cfg(unix)]
    Unix(std::os::unix::net::UnixListener),
}

impl Listener {
    /// Binds `listen` (TCP `host:port`, or a Unix socket path when the
    /// value contains `/`). Returns the listener and its display
    /// address — for TCP with port 0 this is the actual bound port.
    pub fn bind(listen: &str) -> std::io::Result<(Listener, String)> {
        #[cfg(unix)]
        if listen.contains('/') {
            use std::os::unix::fs::FileTypeExt;
            // A stale socket file from a killed process blocks bind —
            // but only an actual socket may be unlinked: a typo'd
            // `--listen` pointing at a regular file must never silently
            // delete it.
            match std::fs::symlink_metadata(listen) {
                Ok(md) if md.file_type().is_socket() => {
                    let _ = std::fs::remove_file(listen);
                }
                Ok(_) => {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::AlreadyExists,
                        format!("--listen path {listen} exists and is not a socket"),
                    ));
                }
                Err(_) => {}
            }
            let l = std::os::unix::net::UnixListener::bind(listen)?;
            return Ok((Listener::Unix(l), listen.to_string()));
        }
        let l = TcpListener::bind(listen)?;
        let addr = l.local_addr()?.to_string();
        Ok((Listener::Tcp(l), addr))
    }
}

/// The single-writer core: state, journal and the stats collectors.
/// Exactly one thread holds this at a time (the `Daemon::core` mutex),
/// which is the one-writer invariant — reads never touch it.
struct Core {
    state: ServeState,
    journal: Journal,
    /// Lifetime stats: every write request's fresh per-request
    /// collector is folded in here after the request finishes. Rendering
    /// the published view runs under a throwaway collector instead, so
    /// this block reflects only the committed request history.
    lifetime: Collector,
    /// Counters folded during startup replay — kept out of `lifetime`
    /// so a recovered daemon's `STATS` stays comparable to an uncrashed
    /// twin's.
    recovery: Collector,
    /// Journal records replayed during startup recovery.
    replayed: u64,
    /// Monotonic version of the published view (bumped per render).
    version: u64,
}

/// An immutable, fully rendered read view. Built under the core lock
/// after every commit and swapped into `Daemon::published` wholesale,
/// so a concurrent reader sees either the pre- or the post-commit
/// view — never a mid-commit state.
struct PublishedView {
    /// Render generation (monotonic; for tests and debugging).
    version: u64,
    output: String,
    stats: String,
    health: String,
}

impl Core {
    /// Renders the committed state into an immutable view. The
    /// presentation work (CSV rendering, loss recomputation) runs under
    /// a throwaway collector so the lifetime counters keep reflecting
    /// only the committed request history — that is what makes a live
    /// daemon's `STATS` byte-comparable to its recovered twin's.
    fn render_view(&mut self) -> PublishedView {
        self.version += 1;
        let scratch = Collector::new();
        let guard = scratch.install();
        let output = match (|| -> KanonResult<String> {
            let loss = self.state.published_loss()?;
            let csv = self.state.published_csv()?;
            Ok(format!(
                "OK rows={} loss={:.6}\n{}",
                self.state.published_rows(),
                loss,
                csv
            ))
        })() {
            Ok(s) => s,
            Err(e) => format!("ERR {}: {e}", class(&e)),
        };
        drop(guard);
        // Line 2 is the deterministic lifetime counter block
        // (byte-identical across thread counts and restarts of the same
        // request history); line 3 is the full lifetime report including
        // runtime data; line 4 is the recovery block — counters folded
        // during startup replay, all-zero on a daemon that never
        // crashed.
        let lifetime = self.lifetime.report();
        let recovery = self.recovery.report();
        let stats = format!(
            "OK\n{}\n{}\n{}",
            lifetime.counters_json(),
            lifetime.to_json(),
            recovery.counters_json()
        );
        let health = format!(
            "OK {{\"status\":\"ok\",\"rows\":{},\"published\":{},\"pending\":{},\
             \"clusters\":{},\"batches\":{},\"seq\":{},\"reopts\":{},\"replayed\":{},\
             \"drift\":{}}}",
            self.state.num_rows(),
            self.state.published_rows(),
            self.state.pending_rows(),
            self.state.mature_clusters(),
            self.state.batches_applied(),
            self.state.next_seq() - 1,
            self.state.reopt_runs(),
            self.replayed,
            match self.state.last_drift() {
                Some(d) => format!("{d:.6}"),
                None => "null".to_string(),
            }
        );
        PublishedView {
            version: self.version,
            output,
            stats,
            health,
        }
    }

    /// Folds one request's report into the lifetime collector.
    fn fold(&self, report: &Report) {
        let _g = self.lifetime.install();
        fold_report(report);
    }
}

/// Counts every nonzero counter of `report` into the *currently
/// installed* collector — the caller picks the destination by holding
/// an install guard (the daemon's `lifetime`, or `recovery` during
/// startup replay).
pub(crate) fn fold_report(report: &Report) {
    for &c in Counter::ALL.iter() {
        let v = report.counter(c);
        if v > 0 {
            count(c, v);
        }
    }
    for &c in RuntimeCounter::ALL.iter() {
        let v = report.runtime_counter(c);
        if v > 0 {
            count_runtime(c, v);
        }
    }
}

/// A cloned stream handle held per live connection so shutdown can
/// unblock a reader stuck in a blocking `read_frame`.
enum Kick {
    Tcp(std::net::TcpStream),
    #[cfg(unix)]
    Unix(std::os::unix::net::UnixStream),
}

impl Kick {
    fn kick(&self) {
        match self {
            Kick::Tcp(s) => {
                let _ = s.shutdown(std::net::Shutdown::Both);
            }
            #[cfg(unix)]
            Kick::Unix(s) => {
                let _ = s.shutdown(std::net::Shutdown::Both);
            }
        }
    }
}

/// The daemon: resident state + journal behind the single-writer lock,
/// plus the atomically published read view and connection lifecycle.
pub struct Daemon {
    core: Mutex<Core>,
    /// The last committed read view. Swapped wholesale (a fresh `Arc`)
    /// by the writer after every committed mutation; readers clone the
    /// `Arc` and answer from it without ever touching `core`.
    published: RwLock<Arc<PublishedView>>,
    opts: ServeOptions,
    /// Set by the connection that received `SHUTDOWN`; the accept loop
    /// and every connection loop re-check it.
    shutdown: AtomicBool,
    /// The bound listen address, once `run` has bound it (the shutdown
    /// wake-up connection targets this).
    bound_addr: Mutex<Option<String>>,
    /// Kick handles of live connections, keyed by connection id, so
    /// shutdown can unblock readers stuck in blocking reads.
    conns: Mutex<BTreeMap<u64, Kick>>,
    next_conn: AtomicU64,
}

impl Daemon {
    /// Starts a daemon: restores the newest snapshot if one exists
    /// (otherwise bootstraps from `base`), truncates any crash-torn
    /// journal tail to the intact prefix, replays the journal tail, and
    /// opens the journal for appending. After this returns, the
    /// in-memory state is byte-identical to the pre-crash state, and
    /// new appends land where a future recovery will read them.
    pub fn start(base: Table, cfg: ServeConfig, opts: ServeOptions) -> KanonResult<Daemon> {
        std::fs::create_dir_all(&opts.state_dir).map_err(|e| io_err(&opts.state_dir, &e))?;
        let snapshot_path = opts.state_dir.join(SNAPSHOT_FILE);
        let journal_path = opts.state_dir.join(JOURNAL_FILE);
        let schema = base.schema().clone();
        let mut state = if snapshot_path.exists() {
            let text =
                std::fs::read_to_string(&snapshot_path).map_err(|e| io_err(&snapshot_path, &e))?;
            ServeState::restore_snapshot(&text, cfg, schema)?
        } else {
            ServeState::bootstrap(base, cfg)?
        };
        let lifetime = Collector::new();
        let recovery = Collector::new();
        let replayed = {
            // Replay work is folded into the `recovery` collector, not
            // `lifetime`: a recovered daemon's lifetime block must stay
            // comparable to an uncrashed daemon's.
            let _g = recovery.install();
            state.replay_journal(&journal_path)?
        };
        let journal = Journal::open(&journal_path).map_err(|e| io_err(&journal_path, &e))?;
        let mut core = Core {
            state,
            journal,
            lifetime,
            recovery,
            replayed,
            version: 0,
        };
        let published = RwLock::new(Arc::new(core.render_view()));
        Ok(Daemon {
            core: Mutex::new(core),
            published,
            opts,
            shutdown: AtomicBool::new(false),
            bound_addr: Mutex::new(None),
            conns: Mutex::new(BTreeMap::new()),
            next_conn: AtomicU64::new(1),
        })
    }

    /// Serves requests until `SHUTDOWN` (graceful) or a listener error.
    /// The bound address is written to `<state-dir>/serve.addr` and
    /// logged to stderr before the first accept. Each accepted
    /// connection gets its own thread; write requests serialize behind
    /// the core lock while reads are answered from the published view.
    pub fn run(&self) -> KanonResult<()> {
        let (listener, addr) = Listener::bind(&self.opts.listen)
            .map_err(|e| io_err(Path::new(&self.opts.listen), &e))?;
        *self.bound_addr.lock().unwrap() = Some(addr.clone());
        let addr_path = self.opts.state_dir.join(ADDR_FILE);
        std::fs::write(&addr_path, format!("{addr}\n")).map_err(|e| io_err(&addr_path, &e))?;
        {
            let core = self.core.lock().unwrap();
            eprintln!(
                "kanon serve: listening on {addr} ({} rows resident, {} replayed)",
                core.state.num_rows(),
                core.replayed
            );
        }
        let idle = (self.opts.idle_timeout_ms > 0)
            .then(|| std::time::Duration::from_millis(self.opts.idle_timeout_ms));
        std::thread::scope(|scope| {
            loop {
                let (conn, kick): (Box<dyn Conn>, Option<Kick>) = match &listener {
                    Listener::Tcp(l) => match l.accept() {
                        Ok((s, _)) => {
                            let _ = s.set_read_timeout(idle);
                            let kick = s.try_clone().ok().map(Kick::Tcp);
                            (Box::new(s), kick)
                        }
                        Err(_) => {
                            if self.shutdown_requested() {
                                break;
                            }
                            continue;
                        }
                    },
                    #[cfg(unix)]
                    Listener::Unix(l) => match l.accept() {
                        Ok((s, _)) => {
                            let _ = s.set_read_timeout(idle);
                            let kick = s.try_clone().ok().map(Kick::Unix);
                            (Box::new(s), kick)
                        }
                        Err(_) => {
                            if self.shutdown_requested() {
                                break;
                            }
                            continue;
                        }
                    },
                };
                if self.shutdown_requested() {
                    // The shutdown wake-up connect (or a late client).
                    break;
                }
                if kanon_fault::armed() && kanon_fault::fires(POINT_ACCEPT) {
                    drop(conn); // injected network fault: client sees a reset
                    continue;
                }
                let id = self.next_conn.fetch_add(1, Ordering::Relaxed);
                if let Some(k) = kick {
                    self.conns.lock().unwrap().insert(id, k);
                }
                scope.spawn(move || {
                    self.serve_connection(conn, id);
                    self.conns.lock().unwrap().remove(&id);
                });
            }
        });
        // Graceful shutdown: capture the final state in a snapshot.
        if self.opts.snapshot_every > 0 {
            let mut core = self.core.lock().unwrap();
            self.snapshot(&mut core);
        }
        Ok(())
    }

    fn shutdown_requested(&self) -> bool {
        self.shutdown.load(Ordering::Acquire)
    }

    /// Flips the shutdown flag, kicks every live connection out of its
    /// blocking read, and unblocks the accept loop with a throwaway
    /// wake-up connection.
    fn begin_shutdown(&self) {
        self.shutdown.store(true, Ordering::Release);
        for kick in self.conns.lock().unwrap().values() {
            kick.kick();
        }
        let addr = self.bound_addr.lock().unwrap().clone();
        if let Some(addr) = addr {
            #[cfg(unix)]
            if addr.contains('/') {
                let _ = std::os::unix::net::UnixStream::connect(addr.as_str());
                return;
            }
            let _ = std::net::TcpStream::connect(addr.as_str());
        }
    }

    /// Serves one connection until EOF, an I/O error, `SHUTDOWN`, or a
    /// shutdown kick from another connection.
    fn serve_connection(&self, mut conn: Box<dyn Conn>, id: u64) {
        loop {
            if self.shutdown_requested() {
                return;
            }
            let payload = match read_frame(&mut conn, self.opts.max_frame) {
                Ok(Some(p)) => p,
                Ok(None) => return,
                Err(e) => {
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) {
                        // Idle client: the per-read timeout fired with no
                        // frame in flight. Drop the connection silently.
                        return;
                    }
                    // Oversize/truncated frame (or a shutdown kick):
                    // diagnose if the pipe is still writable, then drop
                    // the connection.
                    let _ = write_frame(&mut conn, format!("ERR Usage: {e}").as_bytes());
                    return;
                }
            };
            let (response, control) = match parse_request(&payload) {
                Ok(req) => self.handle(req),
                Err(msg) => (format!("ERR Usage: {msg}"), Control::Continue),
            };
            if write_frame(&mut conn, response.as_bytes()).is_err() {
                return; // client went away mid-response
            }
            if control == Control::Shutdown {
                // Deregister first so the kick pass cannot sever this
                // socket while the client is still reading the response.
                self.conns.lock().unwrap().remove(&id);
                self.begin_shutdown();
                return;
            }
        }
    }

    /// Dispatches one parsed request. Write requests (`BATCH`, `REOPT`,
    /// `SNAPSHOT`) take the core lock and republish the read view after
    /// committing; read requests answer from the published view without
    /// locking the core.
    fn handle(&self, req: Request) -> (String, Control) {
        match req {
            Request::Batch {
                deadline_ms,
                retries,
                absorb_epsilon,
                body,
            } => {
                let mut core = self.core.lock().unwrap();
                let resp =
                    self.handle_batch(&mut core, deadline_ms, retries, absorb_epsilon, &body);
                self.publish(&mut core);
                (resp, Control::Continue)
            }
            Request::Reopt => {
                let mut core = self.core.lock().unwrap();
                let resp = match self.reopt(&mut core) {
                    Ok(out) => format!(
                        "OK loss_incremental={:.6} loss_scratch={:.6} drift={:+.6} clusters={}",
                        out.loss_incremental, out.loss_scratch, out.drift, out.clusters
                    ),
                    Err(e) => format!("ERR {}: {e}", class(&e)),
                };
                self.publish(&mut core);
                (resp, Control::Continue)
            }
            Request::Snapshot => {
                let mut core = self.core.lock().unwrap();
                let resp = match self.snapshot(&mut core) {
                    Some(true) => "OK snapshot written".to_string(),
                    Some(false) => "OK snapshot skipped (fault injected)".to_string(),
                    None => "ERR Io: snapshot write failed".to_string(),
                };
                self.publish(&mut core);
                (resp, Control::Continue)
            }
            Request::Output => (
                self.published.read().unwrap().output.clone(),
                Control::Continue,
            ),
            Request::Stats => (
                self.published.read().unwrap().stats.clone(),
                Control::Continue,
            ),
            Request::Health => (
                self.published.read().unwrap().health.clone(),
                Control::Continue,
            ),
            Request::Shutdown => ("OK shutting down".to_string(), Control::Shutdown),
        }
    }

    /// Rebuilds and atomically swaps the published read view (called
    /// with the core lock held, i.e. by the single writer).
    fn publish(&self, core: &mut Core) {
        let view = Arc::new(core.render_view());
        *self.published.write().unwrap() = view;
    }

    /// The full batch lifecycle: journal (WAL), apply with deadline
    /// budget and absorption ε, retry transient faults with exponential
    /// backoff, roll back permanent failures.
    fn handle_batch(
        &self,
        core: &mut Core,
        deadline_ms: Option<u64>,
        retries: Option<u64>,
        absorb_epsilon: Option<f64>,
        body: &str,
    ) -> String {
        let budget = deadline_ms
            .map(|ms| ms.saturating_mul(self.opts.work_rate))
            .unwrap_or(0);
        // The per-request ε (if any) overrides the configured default;
        // whichever wins is journaled with the record so replay applies
        // the identical absorption criterion.
        let epsilon = absorb_epsilon.unwrap_or_else(|| core.state.absorb_epsilon());
        let seq = core.state.next_seq();
        if let Err(e) =
            core.journal
                .append(seq, RecordKind::Batch, budget, epsilon, body.as_bytes())
        {
            return format!("ERR Io: journal append failed: {e}");
        }
        let max_attempts = retries.unwrap_or(self.opts.retries) + 1;
        let mut attempt: u64 = 0;
        loop {
            attempt += 1;
            // A fresh collector per attempt: the budget is relative
            // (spent-work baseline 0), which is what makes the recorded
            // budget reproduce the same cut during journal replay.
            let collector = Collector::new();
            let guard = collector.install();
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                core.state.apply_batch(body, budget, epsilon)
            }));
            drop(guard);
            let outcome = match outcome {
                Ok(r) => r,
                Err(payload) => Err(error_from_panic(payload)),
            };
            match outcome {
                Ok(report) => {
                    core.fold(&collector.report());
                    let mut extra = String::new();
                    // `u64::is_multiple_of` needs Rust 1.87; MSRV is 1.75.
                    #[allow(clippy::manual_is_multiple_of)]
                    if core.state.reopt_every() > 0
                        && core.state.batches_applied() % core.state.reopt_every() == 0
                    {
                        extra = match self.reopt(core) {
                            Ok(out) => format!(" drift={:+.6}", out.drift),
                            Err(e) => format!(" reopt_failed={e}"),
                        };
                    }
                    // Snapshot after any periodic reopt, not before it:
                    // the snapshot then captures the post-reopt state, so
                    // recovery needn't replay the reopt's journal record.
                    #[allow(clippy::manual_is_multiple_of)]
                    if self.opts.snapshot_every > 0
                        && core.state.batches_applied() % self.opts.snapshot_every == 0
                    {
                        self.snapshot(core);
                    }
                    return format!(
                        "OK seq={} rows_in={} absorbed={} absorbed_eps={} clustered={} \
                         pending={} suppressed={} rooted={} budget_exhausted={} attempts={}{}",
                        report.seq,
                        report.rows_in,
                        report.absorbed,
                        report.absorbed_eps,
                        report.clustered,
                        report.pending,
                        report.rows_suppressed,
                        report.cells_rooted,
                        report.budget_exhausted,
                        attempt,
                        extra
                    );
                }
                Err(e) if transient(&e) && attempt < max_attempts => {
                    let backoff = self
                        .opts
                        .backoff_ms
                        .saturating_mul(1 << (attempt - 1).min(16));
                    std::thread::sleep(std::time::Duration::from_millis(backoff));
                }
                Err(e) => {
                    // Permanent failure: mark the journaled batch rolled
                    // back so replay skips it, and burn its seq.
                    let _ = core.journal.append(seq, RecordKind::Rollback, 0, 0.0, b"");
                    core.state.note_rollback(seq);
                    return format!("ERR {}: {e} (attempts={attempt})", class(&e));
                }
            }
        }
    }

    /// Runs a re-optimization pass under the same write-ahead
    /// discipline as a batch: an `O` record is journaled (fsync) before
    /// the state mutates, so a `kill -9` at any instant after the
    /// published clustering changed recovers to the same clustering —
    /// never to the pre-reopt generalization of the same rows. A failed
    /// reopt rolls its journal record back and burns the seq, exactly
    /// like a permanently failed batch.
    fn reopt(&self, core: &mut Core) -> KanonResult<state::ReoptOutcome> {
        let seq = core.state.next_seq();
        core.journal
            .append(seq, RecordKind::Reopt, 0, 0.0, b"")
            .map_err(|e| io_err(core.journal.path(), &e))?;
        let collector = Collector::new();
        let guard = collector.install();
        let out = core.state.reopt();
        drop(guard);
        core.fold(&collector.report());
        match out {
            Ok(outcome) => {
                debug_assert_eq!(core.state.next_seq(), seq + 1);
                Ok(outcome)
            }
            Err(e) => {
                let _ = core.journal.append(seq, RecordKind::Rollback, 0, 0.0, b"");
                core.state.note_rollback(seq);
                Err(e)
            }
        }
    }

    /// Writes a snapshot, then compacts the journal down to the records
    /// the snapshot does not cover. `Some(false)` = skipped by the
    /// `serve/snapshot/write` fault, `None` = I/O error. All failure
    /// modes degrade: the daemon stays up, recovery just replays a
    /// longer journal.
    fn snapshot(&self, core: &mut Core) -> Option<bool> {
        let path = self.opts.state_dir.join(SNAPSHOT_FILE);
        match core.state.write_snapshot(&path) {
            Ok(true) => {
                // Every record with seq ≤ covered is now reproduced by
                // the snapshot; dropping them bounds the journal at
                // O(batches since last snapshot).
                let covered = core.state.next_seq() - 1;
                match core.journal.compact(covered) {
                    Ok(Some(bytes)) => {
                        if bytes > 0 {
                            let _g = core.lifetime.install();
                            count(Counter::ServeJournalBytesCompacted, bytes);
                        }
                    }
                    Ok(None) => {} // fault-skipped: the covered prefix lingers
                    Err(e) => eprintln!("kanon serve: journal compaction failed: {e}"),
                }
                Some(true)
            }
            Ok(false) => Some(false),
            Err(e) => {
                eprintln!("kanon serve: snapshot write failed: {e}");
                None
            }
        }
    }

    /// Runs `f` against the resident state (read access for tests and
    /// the CLI; takes the core lock).
    pub fn with_state<R>(&self, f: impl FnOnce(&ServeState) -> R) -> R {
        f(&self.core.lock().unwrap().state)
    }

    /// Journal records replayed during startup recovery.
    pub fn replayed(&self) -> u64 {
        self.core.lock().unwrap().replayed
    }

    /// Version of the currently published read view (monotonic; bumps
    /// once per committed write request).
    pub fn published_version(&self) -> u64 {
        self.published.read().unwrap().version
    }
}

/// Both `Read` and `Write`, sendable to a connection thread (TCP and
/// Unix streams qualify).
trait Conn: Read + Write + Send {}
impl<T: Read + Write + Send> Conn for T {}

/// Transient errors are worth retrying: an injected fault's `once:K`
/// ordinal advances per hit, and a worker panic may be one poisoned
/// dispatch — both can succeed on the next attempt. Everything else
/// (bad data, budget, usage) would fail identically again.
pub(crate) fn transient(e: &KanonError) -> bool {
    matches!(
        e,
        KanonError::FaultInjected { .. } | KanonError::WorkerPanic { .. }
    )
}

/// The `ERR <class>` tag mirrors the `KanonError` variant name.
fn class(e: &KanonError) -> &'static str {
    match e {
        KanonError::Core(_) => "Core",
        KanonError::FaultInjected { .. } => "FaultInjected",
        KanonError::WorkerPanic { .. } => "WorkerPanic",
        KanonError::Panic { .. } => "Panic",
        KanonError::BudgetExhausted { .. } => "BudgetExhausted",
        KanonError::Io { .. } => "Io",
        KanonError::Usage(_) => "Usage",
        KanonError::Interrupted { .. } => "Interrupted",
    }
}

fn io_err(path: &Path, e: &std::io::Error) -> KanonError {
    KanonError::Io {
        path: path.display().to_string(),
        message: e.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kanon_core::schema::SchemaBuilder;
    use kanon_core::schema::SharedSchema;
    use kanon_data::csv::{table_from_csv_with_policy, RowPolicy};
    use state::Measure;

    fn schema() -> SharedSchema {
        SchemaBuilder::new()
            .categorical_with_groups(
                "zip",
                ["10", "11", "20", "21"],
                &[&["10", "11"], &["20", "21"]],
            )
            .categorical_with_groups(
                "age",
                ["20s", "30s", "60s", "70s"],
                &[&["20s", "30s"], &["60s", "70s"]],
            )
            .build_shared()
            .unwrap()
    }

    fn base_table() -> Table {
        let csv = "10,20s\n10,30s\n11,20s\n20,60s\n21,70s\n20,70s\n";
        table_from_csv_with_policy(&schema(), csv, false, RowPolicy::Strict)
            .unwrap()
            .0
    }

    fn cfg() -> ServeConfig {
        ServeConfig {
            k: 2,
            measure: Measure::Lm,
            policy: RowPolicy::Strict,
            shard_max: 0,
            reopt_every: 0,
            absorb_epsilon: 0.0,
        }
    }

    fn opts(tag: &str) -> ServeOptions {
        let dir =
            std::env::temp_dir().join(format!("kanon-serve-lib-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        ServeOptions {
            listen: "127.0.0.1:0".to_string(),
            state_dir: dir,
            snapshot_every: 0,
            retries: 2,
            backoff_ms: 0,
            work_rate: 5_000,
            max_frame: 1 << 20,
            idle_timeout_ms: 0,
        }
    }

    /// Same state dir as [`opts`] but *without* wiping it.
    fn opts2_keep(tag: &str) -> ServeOptions {
        let dir =
            std::env::temp_dir().join(format!("kanon-serve-lib-{tag}-{}", std::process::id()));
        ServeOptions {
            listen: "127.0.0.1:0".to_string(),
            state_dir: dir,
            snapshot_every: 0,
            retries: 2,
            backoff_ms: 0,
            work_rate: 5_000,
            max_frame: 1 << 20,
            idle_timeout_ms: 0,
        }
    }

    fn request(d: &Daemon, req: &[u8]) -> String {
        let (resp, _) = d.handle(parse_request(req).unwrap());
        resp
    }

    fn journal_len(o: &ServeOptions) -> u64 {
        std::fs::metadata(o.state_dir.join(JOURNAL_FILE))
            .map(|m| m.len())
            .unwrap_or(0)
    }

    #[test]
    fn batch_output_stats_health_round_trip() {
        let d = Daemon::start(base_table(), cfg(), opts("roundtrip")).unwrap();
        let resp = request(&d, b"BATCH\n10,20s\n");
        assert!(resp.starts_with("OK seq=1 rows_in=1"), "{resp}");
        let resp = request(&d, b"OUTPUT");
        assert!(resp.starts_with("OK rows="), "{resp}");
        let resp = request(&d, b"STATS");
        assert!(resp.contains("\"serve_batches_applied\":1"), "{resp}");
        let resp = request(&d, b"HEALTH");
        assert!(resp.contains("\"status\":\"ok\""), "{resp}");
        assert!(resp.contains("\"batches\":1"), "{resp}");
    }

    #[test]
    fn transient_faults_are_retried_and_succeed() {
        let d = Daemon::start(base_table(), cfg(), opts("retry")).unwrap();
        let _g = kanon_fault::scoped("serve/batch/apply=once:1");
        let resp = request(&d, b"BATCH\n10,20s\n");
        assert!(resp.starts_with("OK "), "{resp}");
        assert!(resp.contains("attempts=2"), "{resp}");
    }

    #[test]
    fn exhausted_retries_roll_the_batch_back() {
        let mut o = opts("rollback");
        o.retries = 1;
        let d = Daemon::start(base_table(), cfg(), o).unwrap();
        // Fire on every hit: attempt 1 and its single retry both fail.
        let _g = kanon_fault::scoped("serve/batch/apply=every:1");
        let resp = request(&d, b"BATCH\n10,20s\n");
        assert!(resp.starts_with("ERR FaultInjected:"), "{resp}");
        assert!(resp.contains("attempts=2"), "{resp}");
        drop(_g);
        // State untouched; the next batch gets a fresh seq past the
        // rolled-back one.
        assert_eq!(d.with_state(|s| s.num_rows()), 6);
        let resp = request(&d, b"BATCH\n10,20s\n");
        assert!(resp.starts_with("OK seq=2 "), "{resp}");
    }

    #[test]
    fn deadline_maps_to_budget_and_commits_valid_partial() {
        // An absurdly tight deadline: 1ms at 1 unit/ms.
        let mut o = opts("deadline");
        o.work_rate = 1;
        let d = Daemon::start(base_table(), cfg(), o).unwrap();
        let resp = request(&d, b"BATCH deadline_ms=1\n10,60s\n11,70s\n10,70s\n11,60s\n");
        // Either the tiny run fits the budget or a valid partial commits;
        // both are OK responses, never a hard failure.
        assert!(resp.starts_with("OK "), "{resp}");
    }

    #[test]
    fn crash_recovery_reaches_byte_identical_output() {
        let o = opts("recovery");
        let d = Daemon::start(base_table(), cfg(), o.clone()).unwrap();
        request(&d, b"BATCH\n10,60s\n11,70s\n");
        request(&d, b"BATCH\n10,70s\n11,60s\n");
        let live_out = request(&d, b"OUTPUT");
        let live_health = request(&d, b"HEALTH");
        drop(d); // "kill": no snapshot (snapshot_every=0), journal only

        let r = Daemon::start(base_table(), cfg(), o).unwrap();
        assert_eq!(r.replayed(), 2);
        let mut rec_out = request(&r, b"OUTPUT");
        // HEALTH differs only in the replayed count.
        let rec_health = request(&r, b"HEALTH").replace("\"replayed\":2", "\"replayed\":0");
        assert_eq!(rec_out, live_out);
        assert_eq!(rec_health, live_health);
        // And the journal tail keeps replaying over a snapshot too.
        request(&r, b"SNAPSHOT");
        request(&r, b"BATCH\n10,20s\n");
        rec_out = request(&r, b"OUTPUT");
        drop(r);
        let r2 = Daemon::start(base_table(), cfg(), opts2_keep("recovery")).unwrap();
        assert_eq!(r2.replayed(), 1); // only the post-snapshot batch
        assert_eq!(request(&r2, b"OUTPUT"), rec_out);
    }

    #[test]
    fn double_crash_with_a_torn_tail_loses_nothing() {
        // The headline regression: a kill -9 mid-append leaves a torn
        // record at the journal tail. Recovery must truncate it before
        // reopening for append — otherwise the next acknowledged batch
        // lands *behind* the garbage, where the stop-at-first-bad-record
        // rule hides it from the recovery after a second kill -9.
        let o = opts("doublecrash");
        let d = Daemon::start(base_table(), cfg(), o.clone()).unwrap();
        request(&d, b"BATCH\n10,60s\n11,70s\n");
        drop(d); // first kill -9 ...
        let journal_path = o.state_dir.join(JOURNAL_FILE);
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(&journal_path)
            .unwrap();
        // ... torn mid-append: a header promising 34 payload bytes with
        // only 4 on disk, exactly what a power cut mid-write leaves.
        f.write_all(b"KJ1 2 B 0 34 00000000\ntorn").unwrap();
        drop(f);

        let r = Daemon::start(base_table(), cfg(), opts2_keep("doublecrash")).unwrap();
        assert_eq!(r.replayed(), 1);
        let resp = request(&r, b"BATCH\n10,70s\n11,60s\n");
        assert!(resp.starts_with("OK seq=2 "), "{resp}");
        let out = request(&r, b"OUTPUT");
        drop(r); // second kill -9

        // The batch acknowledged after the first recovery must survive
        // the second crash byte-identically.
        let r2 = Daemon::start(base_table(), cfg(), opts2_keep("doublecrash")).unwrap();
        assert_eq!(
            r2.replayed(),
            2,
            "post-restart append was buried behind the torn tail"
        );
        assert_eq!(request(&r2, b"OUTPUT"), out);
    }

    #[test]
    fn snapshot_compacts_the_journal_and_recovery_stays_identical() {
        let o = opts("compactlib");
        let d = Daemon::start(base_table(), cfg(), o.clone()).unwrap();
        request(&d, b"BATCH\n10,60s\n11,70s\n");
        request(&d, b"BATCH\n10,70s\n11,60s\n");
        let before = journal_len(&o);
        assert!(before > 0);
        let resp = request(&d, b"SNAPSHOT");
        assert!(resp.starts_with("OK snapshot written"), "{resp}");
        // The snapshot covers every record: the journal compacts to
        // empty, and the reclaimed bytes land in the lifetime stats.
        assert_eq!(journal_len(&o), 0, "journal did not shrink after snapshot");
        let stats = request(&d, b"STATS");
        assert!(
            stats.contains(&format!("\"serve_journal_bytes_compacted\":{before}")),
            "{stats}"
        );
        // Post-compaction appends land in the fresh journal and replay.
        request(&d, b"BATCH\n10,20s\n");
        assert!(journal_len(&o) > 0);
        let out = request(&d, b"OUTPUT");
        drop(d);
        let r = Daemon::start(base_table(), cfg(), opts2_keep("compactlib")).unwrap();
        assert_eq!(r.replayed(), 1); // only the post-snapshot batch
        assert_eq!(request(&r, b"OUTPUT"), out);
    }

    #[test]
    fn compaction_fault_degrades_to_a_longer_journal() {
        let o = opts("compactfault");
        let d = Daemon::start(base_table(), cfg(), o.clone()).unwrap();
        request(&d, b"BATCH\n10,60s\n11,70s\n");
        let before = journal_len(&o);
        let resp = {
            let _g = kanon_fault::scoped("serve/journal/compact=every:1");
            request(&d, b"SNAPSHOT")
        };
        // The snapshot itself succeeded; only the compaction was
        // skipped, so the covered records linger harmlessly.
        assert!(resp.starts_with("OK snapshot written"), "{resp}");
        assert_eq!(journal_len(&o), before);
        drop(d);
        let r = Daemon::start(base_table(), cfg(), opts2_keep("compactfault")).unwrap();
        // Recovery restores the snapshot and skips the covered records.
        assert_eq!(r.replayed(), 0);
        assert_eq!(r.with_state(|s| s.next_seq()), 2);
    }

    #[test]
    fn recovered_stats_report_replay_in_a_separate_block() {
        let o = opts("recstats");
        let d = Daemon::start(base_table(), cfg(), o.clone()).unwrap();
        request(&d, b"BATCH\n10,60s\n11,70s\n");
        request(&d, b"BATCH\n10,70s\n11,60s\n");
        let live = request(&d, b"STATS");
        let live_lines: Vec<String> = live.lines().map(str::to_string).collect();
        assert_eq!(live_lines.len(), 4, "{live}");
        // A live daemon has replayed nothing: its recovery block is the
        // all-zero counter set.
        assert!(
            live_lines[3].contains("\"serve_journal_replays\":0"),
            "{live}"
        );
        drop(d);

        let r = Daemon::start(base_table(), cfg(), opts2_keep("recstats")).unwrap();
        let rec = request(&r, b"STATS");
        let rec_lines: Vec<String> = rec.lines().map(str::to_string).collect();
        // The recovered daemon has served nothing yet: its lifetime
        // block equals the live daemon's (empty) recovery block — no
        // replay noise leaks into lifetime stats.
        assert_eq!(rec_lines[1], live_lines[3]);
        // And its recovery block is the live daemon's lifetime block,
        // except for the replay count itself: the replayed work is
        // byte-identical to the original work.
        let expected =
            live_lines[1].replace("\"serve_journal_replays\":0", "\"serve_journal_replays\":2");
        assert_eq!(rec_lines[3], expected);
    }

    #[test]
    fn concurrent_reads_observe_only_committed_views() {
        let d = Daemon::start(base_table(), cfg(), opts("concread")).unwrap();
        request(&d, b"BATCH\n10,60s\n11,70s\n");
        let pre = request(&d, b"OUTPUT");
        let v0 = d.published_version();
        let observed = Mutex::new(Vec::new());
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    let mut last = 0u64;
                    let mut seen = Vec::new();
                    for _ in 0..100 {
                        let v = d.published_version();
                        assert!(v >= last, "published version went backwards");
                        last = v;
                        seen.push(request(&d, b"OUTPUT"));
                    }
                    observed.lock().unwrap().append(&mut seen);
                });
            }
            s.spawn(|| {
                request(&d, b"BATCH\n10,70s\n11,60s\n");
            });
        });
        let post = request(&d, b"OUTPUT");
        assert!(d.published_version() > v0);
        assert_ne!(pre, post);
        for out in observed.lock().unwrap().iter() {
            assert!(
                *out == pre || *out == post,
                "reader observed a mid-commit view: {out}"
            );
        }
    }

    #[test]
    fn reopt_survives_crash_recovery() {
        // The high-stakes invariant: a reopt rewrites the published
        // generalization of already-released rows, so recovering to the
        // pre-reopt clustering would publish two different
        // generalizations of the same rows. The journaled `O` record
        // must carry the reopt through `kill -9`.
        let o = opts("reopt-recovery");
        let d = Daemon::start(base_table(), cfg(), o.clone()).unwrap();
        request(&d, b"BATCH\n10,60s\n11,70s\n");
        let resp = request(&d, b"REOPT");
        assert!(resp.starts_with("OK loss_incremental="), "{resp}");
        let live_out = request(&d, b"OUTPUT");
        let live_health = request(&d, b"HEALTH");
        assert!(live_health.contains("\"reopts\":1"), "{live_health}");
        drop(d); // "kill": journal only, no snapshot

        let r = Daemon::start(base_table(), cfg(), opts2_keep("reopt-recovery")).unwrap();
        assert_eq!(r.replayed(), 2); // the batch and the reopt
        assert_eq!(request(&r, b"OUTPUT"), live_out);
        let rec_health = request(&r, b"HEALTH").replace("\"replayed\":2", "\"replayed\":0");
        assert_eq!(rec_health, live_health);
    }

    #[test]
    fn failed_reopt_rolls_back_and_burns_its_seq() {
        // shard_max 2 forces the partitioner to split (and hence hit
        // its fail point) even on this tiny table.
        let mut c = cfg();
        c.shard_max = 2;
        let o = opts("reopt-rollback");
        let d = Daemon::start(base_table(), c.clone(), o).unwrap();
        request(&d, b"BATCH\n10,60s\n11,70s\n"); // seq 1
        let resp = {
            let _g = kanon_fault::scoped("algos/shard/partition=every:1");
            request(&d, b"REOPT")
        };
        assert!(resp.starts_with("ERR FaultInjected:"), "{resp}");
        // The failed reopt journaled seq 2 and rolled it back; the next
        // batch numbers past it.
        let resp = request(&d, b"BATCH\n10,70s\n");
        assert!(resp.starts_with("OK seq=3 "), "{resp}");
        let live_out = request(&d, b"OUTPUT");
        drop(d);

        let r = Daemon::start(base_table(), c, opts2_keep("reopt-rollback")).unwrap();
        assert_eq!(r.replayed(), 2); // both batches; the rolled-back reopt is skipped
        assert_eq!(request(&r, b"OUTPUT"), live_out);
    }

    #[cfg(unix)]
    #[test]
    fn bind_refuses_to_clobber_a_regular_file() {
        let dir = std::env::temp_dir().join(format!("kanon-serve-bind-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        // A typo'd --listen pointing at a real file must error, not
        // delete the file.
        let file = dir.join("precious.csv");
        std::fs::write(&file, "do not delete\n").unwrap();
        let err = match Listener::bind(file.to_str().unwrap()) {
            Ok(_) => panic!("bind accepted a regular file as --listen"),
            Err(e) => e,
        };
        assert_eq!(err.kind(), std::io::ErrorKind::AlreadyExists);
        assert_eq!(
            std::fs::read_to_string(&file).unwrap(),
            "do not delete\n",
            "bind deleted an existing regular file"
        );
        // A stale socket left by a killed process is still cleaned up.
        let sock = dir.join("serve.sock");
        let (l, _) = Listener::bind(sock.to_str().unwrap()).unwrap();
        drop(l); // the socket file outlives the listener
        assert!(sock.exists());
        let (_l, addr) = Listener::bind(sock.to_str().unwrap()).unwrap();
        assert_eq!(addr, sock.to_str().unwrap());
    }

    fn wait_for_addr(state_dir: &Path) -> String {
        let addr_path = state_dir.join(ADDR_FILE);
        loop {
            if let Ok(text) = std::fs::read_to_string(&addr_path) {
                if text.ends_with('\n') {
                    return text.trim().to_string();
                }
            }
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
    }

    #[test]
    fn idle_connection_cannot_wedge_the_daemon() {
        let mut o = opts("idle");
        o.idle_timeout_ms = 100;
        let state_dir = o.state_dir.clone();
        let d = Arc::new(Daemon::start(base_table(), cfg(), o).unwrap());
        let d2 = Arc::clone(&d);
        let handle = std::thread::spawn(move || d2.run());
        let addr = wait_for_addr(&state_dir);
        // A client that connects and sends nothing is dropped after the
        // idle timeout instead of pinning its thread past shutdown.
        let silent = std::net::TcpStream::connect(&addr).unwrap();
        let mut conn = std::net::TcpStream::connect(&addr).unwrap();
        write_frame(&mut conn, b"HEALTH").unwrap();
        let resp = read_frame(&mut conn, 1 << 20).unwrap().unwrap();
        assert!(resp.starts_with(b"OK "), "{resp:?}");
        drop(silent);
        write_frame(&mut conn, b"SHUTDOWN").unwrap();
        let resp = read_frame(&mut conn, 1 << 20).unwrap().unwrap();
        assert!(resp.starts_with(b"OK shutting down"), "{resp:?}");
        handle.join().unwrap().unwrap();
    }

    #[test]
    fn usage_errors_do_not_kill_the_connection_loop() {
        let d = Daemon::start(base_table(), cfg(), opts("usage")).unwrap();
        let (resp, control) = match parse_request(b"NOPE") {
            Ok(req) => d.handle(req),
            Err(msg) => (format!("ERR Usage: {msg}"), Control::Continue),
        };
        assert!(resp.starts_with("ERR Usage:"), "{resp}");
        assert_eq!(control, Control::Continue);
        // Bad rows under Strict: typed Core error, state intact.
        let resp = request(&d, b"BATCH\n99,99\n");
        assert!(resp.starts_with("ERR Core:"), "{resp}");
        assert_eq!(d.with_state(|s| s.num_rows()), 6);
    }

    #[test]
    fn tcp_listener_serves_frames_end_to_end() {
        let o = opts("tcp");
        let state_dir = o.state_dir.clone();
        let d = Arc::new(Daemon::start(base_table(), cfg(), o).unwrap());
        let d2 = Arc::clone(&d);
        let handle = std::thread::spawn(move || d2.run());
        let addr = wait_for_addr(&state_dir);
        let mut conn = std::net::TcpStream::connect(&addr).unwrap();
        write_frame(&mut conn, b"BATCH\n10,20s\n").unwrap();
        let resp = read_frame(&mut conn, 1 << 20).unwrap().unwrap();
        assert!(resp.starts_with(b"OK seq=1"), "{resp:?}");
        write_frame(&mut conn, b"SHUTDOWN").unwrap();
        let resp = read_frame(&mut conn, 1 << 20).unwrap().unwrap();
        assert!(resp.starts_with(b"OK shutting down"), "{resp:?}");
        handle.join().unwrap().unwrap();
    }

    #[test]
    fn concurrent_tcp_readers_do_not_block_batches() {
        // End-to-end over TCP: readers hammer OUTPUT from their own
        // connections while batches commit; every response is a
        // complete committed view.
        let o = opts("tcp-concurrent");
        let state_dir = o.state_dir.clone();
        let d = Arc::new(Daemon::start(base_table(), cfg(), o).unwrap());
        let d2 = Arc::clone(&d);
        let handle = std::thread::spawn(move || d2.run());
        let addr = wait_for_addr(&state_dir);
        std::thread::scope(|s| {
            for _ in 0..3 {
                let addr = addr.clone();
                s.spawn(move || {
                    let mut conn = std::net::TcpStream::connect(&addr).unwrap();
                    for _ in 0..20 {
                        write_frame(&mut conn, b"OUTPUT").unwrap();
                        let resp = read_frame(&mut conn, 1 << 20).unwrap().unwrap();
                        assert!(resp.starts_with(b"OK rows="), "{resp:?}");
                    }
                });
            }
            let addr = addr.clone();
            s.spawn(move || {
                let mut conn = std::net::TcpStream::connect(&addr).unwrap();
                write_frame(&mut conn, b"BATCH\n10,60s\n11,70s\n").unwrap();
                let resp = read_frame(&mut conn, 1 << 20).unwrap().unwrap();
                assert!(resp.starts_with(b"OK seq=1"), "{resp:?}");
            });
        });
        let mut conn = std::net::TcpStream::connect(&addr).unwrap();
        write_frame(&mut conn, b"SHUTDOWN").unwrap();
        let resp = read_frame(&mut conn, 1 << 20).unwrap().unwrap();
        assert!(resp.starts_with(b"OK shutting down"), "{resp:?}");
        handle.join().unwrap().unwrap();
    }
}
