//! `kanon-serve`: a crash-safe incremental anonymization daemon.
//!
//! The daemon holds the hierarchies, the packed signature arena and the
//! engine's clustering state resident, and anonymizes appended
//! micro-batches incrementally over a tiny length-prefixed protocol
//! ([`proto`]). Robustness is the point:
//!
//! * **Deadlines** — a `BATCH deadline_ms=N` request maps its deadline
//!   onto the deterministic work budget (`N × KANON_SERVE_WORK_RATE`
//!   units); a timed-out apply commits a *valid* `BudgetExhausted`
//!   partial instead of failing.
//! * **Retries** — transient faults (`FaultInjected`, `WorkerPanic`)
//!   are retried with deterministic exponential backoff; permanent
//!   failures roll the batch back (journal `R` marker) and leave state
//!   untouched.
//! * **Recovery** — every batch is journaled (fsync) *before* it is
//!   applied ([`journal`]), and state snapshots periodically
//!   ([`state`]); a `kill -9` at any instant recovers to byte-identical
//!   state on restart.
//! * **Degradation** — bad rows follow the `--on-bad-row` policy, a
//!   failed snapshot only lengthens recovery, and the `STATS`/`HEALTH`
//!   endpoints serve the aggregated `kanon-obs` report.
//!
//! Fail points: `serve/accept`, `serve/batch/apply`,
//! `serve/journal/append`, `serve/journal/replay`,
//! `serve/snapshot/write` (see `kanon_fault::CATALOGUE`).

#![warn(missing_docs)]
#![deny(unsafe_code)]
// kanon-lint: allow(L004) the self-pipe signal watcher needs four libc
// calls (signal/pipe/read/write) that have no safe-std equivalent; all
// unsafe is confined to src/signal.rs behind per-call SAFETY arguments,
// and the rest of the crate stays deny(unsafe_code).

use std::io::{Read, Write};
use std::net::TcpListener;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};

use kanon_algos::fallible::error_from_panic;
use kanon_core::error::{KanonError, KanonResult};
use kanon_core::table::Table;
use kanon_obs::{count, count_runtime, Collector, Counter, Report, RuntimeCounter};

pub mod journal;
pub mod proto;
#[allow(unsafe_code)]
pub mod signal;
pub mod state;

use journal::{Journal, RecordKind};
use proto::{parse_request, read_frame, write_frame, Request};
use state::{ServeConfig, ServeState};

/// Fail point: drops an incoming connection before it is served.
pub const POINT_ACCEPT: &str = "serve/accept";

/// Name of the bound-address file the daemon writes inside the state
/// directory (clients of `--listen 127.0.0.1:0` read the port here).
pub const ADDR_FILE: &str = "serve.addr";
/// Name of the write-ahead journal file inside the state directory.
pub const JOURNAL_FILE: &str = "journal.log";
/// Name of the snapshot file inside the state directory.
pub const SNAPSHOT_FILE: &str = "state.snap";

/// Runtime options of a daemon instance (protocol/lifecycle knobs; the
/// anonymization parameters live in [`state::ServeConfig`]).
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Listen address: `host:port` for TCP, or a filesystem path
    /// (anything containing `/`) for a Unix socket.
    pub listen: String,
    /// Directory holding journal, snapshots and the address file.
    pub state_dir: PathBuf,
    /// Snapshot every N applied batches (0 = never).
    pub snapshot_every: u64,
    /// Retry attempts for transient faults (`KANON_SERVE_RETRIES`).
    pub retries: u64,
    /// Base backoff between retries, doubled per attempt
    /// (`KANON_SERVE_BACKOFF_MS`).
    pub backoff_ms: u64,
    /// Work-budget units granted per deadline millisecond
    /// (`KANON_SERVE_WORK_RATE`).
    pub work_rate: u64,
    /// Maximum accepted frame size in bytes (`KANON_SERVE_MAX_FRAME`).
    pub max_frame: u64,
    /// Per-read idle timeout on accepted connections, in milliseconds
    /// (`KANON_SERVE_IDLE_TIMEOUT_MS`; 0 disables). The daemon serves
    /// one connection at a time, so a client that connects and then
    /// sends nothing would otherwise wedge every other client.
    pub idle_timeout_ms: u64,
}

impl ServeOptions {
    /// Options with the `KANON_SERVE_*` environment defaults and an
    /// ephemeral localhost listener.
    pub fn new(state_dir: PathBuf) -> ServeOptions {
        ServeOptions {
            listen: "127.0.0.1:0".to_string(),
            state_dir,
            snapshot_every: kanon_core::config::serve_snapshot_every(),
            retries: kanon_core::config::serve_retries(),
            backoff_ms: kanon_core::config::serve_backoff_ms(),
            work_rate: kanon_core::config::serve_work_rate(),
            max_frame: kanon_core::config::serve_max_frame(),
            idle_timeout_ms: kanon_core::config::serve_idle_timeout_ms(),
        }
    }
}

/// What the connection loop should do after a response.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Control {
    Continue,
    Shutdown,
}

/// A bound listener: TCP or Unix socket.
pub enum Listener {
    /// A TCP listener (`host:port`).
    Tcp(TcpListener),
    /// A Unix-domain socket listener (any `--listen` value with a `/`).
    #[cfg(unix)]
    Unix(std::os::unix::net::UnixListener),
}

impl Listener {
    /// Binds `listen` (TCP `host:port`, or a Unix socket path when the
    /// value contains `/`). Returns the listener and its display
    /// address — for TCP with port 0 this is the actual bound port.
    pub fn bind(listen: &str) -> std::io::Result<(Listener, String)> {
        #[cfg(unix)]
        if listen.contains('/') {
            use std::os::unix::fs::FileTypeExt;
            // A stale socket file from a killed process blocks bind —
            // but only an actual socket may be unlinked: a typo'd
            // `--listen` pointing at a regular file must never silently
            // delete it.
            match std::fs::symlink_metadata(listen) {
                Ok(md) if md.file_type().is_socket() => {
                    let _ = std::fs::remove_file(listen);
                }
                Ok(_) => {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::AlreadyExists,
                        format!("--listen path {listen} exists and is not a socket"),
                    ));
                }
                Err(_) => {}
            }
            let l = std::os::unix::net::UnixListener::bind(listen)?;
            return Ok((Listener::Unix(l), listen.to_string()));
        }
        let l = TcpListener::bind(listen)?;
        let addr = l.local_addr()?.to_string();
        Ok((Listener::Tcp(l), addr))
    }
}

/// The daemon: resident state + journal + lifecycle policy.
pub struct Daemon {
    state: ServeState,
    journal: Journal,
    opts: ServeOptions,
    /// Lifetime stats: every request's fresh per-request collector is
    /// folded in here after the request finishes.
    lifetime: Collector,
    /// Journal records replayed during startup recovery.
    replayed: u64,
}

impl Daemon {
    /// Starts a daemon: restores the newest snapshot if one exists
    /// (otherwise bootstraps from `base`), replays the journal tail,
    /// and opens the journal for appending. After this returns, the
    /// in-memory state is byte-identical to the pre-crash state.
    pub fn start(base: Table, cfg: ServeConfig, opts: ServeOptions) -> KanonResult<Daemon> {
        std::fs::create_dir_all(&opts.state_dir).map_err(|e| io_err(&opts.state_dir, &e))?;
        let snapshot_path = opts.state_dir.join(SNAPSHOT_FILE);
        let journal_path = opts.state_dir.join(JOURNAL_FILE);
        let schema = base.schema().clone();
        let mut state = if snapshot_path.exists() {
            let text =
                std::fs::read_to_string(&snapshot_path).map_err(|e| io_err(&snapshot_path, &e))?;
            ServeState::restore_snapshot(&text, cfg, schema)?
        } else {
            ServeState::bootstrap(base, cfg)?
        };
        let lifetime = Collector::new();
        let replayed = {
            let _g = lifetime.install();
            state.replay_journal(&journal_path)?
        };
        let journal = Journal::open(&journal_path).map_err(|e| io_err(&journal_path, &e))?;
        Ok(Daemon {
            state,
            journal,
            opts,
            lifetime,
            replayed,
        })
    }

    /// Serves requests until `SHUTDOWN` (graceful) or a listener error.
    /// The bound address is written to `<state-dir>/serve.addr` and
    /// logged to stderr before the first accept.
    pub fn run(&mut self) -> KanonResult<()> {
        let (listener, addr) = Listener::bind(&self.opts.listen.clone())
            .map_err(|e| io_err(Path::new(&self.opts.listen), &e))?;
        let addr_path = self.opts.state_dir.join(ADDR_FILE);
        std::fs::write(&addr_path, format!("{addr}\n")).map_err(|e| io_err(&addr_path, &e))?;
        eprintln!(
            "kanon serve: listening on {addr} ({} rows resident, {} replayed)",
            self.state.num_rows(),
            self.replayed
        );
        // Connections are served one at a time, so an idle client must
        // not hold the accept loop hostage: every read gets a timeout
        // and a silent peer is dropped (see `serve_connection`).
        let idle = (self.opts.idle_timeout_ms > 0)
            .then(|| std::time::Duration::from_millis(self.opts.idle_timeout_ms));
        loop {
            let conn: Box<dyn Conn> = match &listener {
                Listener::Tcp(l) => match l.accept() {
                    Ok((s, _)) => {
                        let _ = s.set_read_timeout(idle);
                        Box::new(s)
                    }
                    Err(_) => continue,
                },
                #[cfg(unix)]
                Listener::Unix(l) => match l.accept() {
                    Ok((s, _)) => {
                        let _ = s.set_read_timeout(idle);
                        Box::new(s)
                    }
                    Err(_) => continue,
                },
            };
            if kanon_fault::armed() && kanon_fault::fires(POINT_ACCEPT) {
                drop(conn); // injected network fault: client sees a reset
                continue;
            }
            if self.serve_connection(conn) == Control::Shutdown {
                if self.opts.snapshot_every > 0 {
                    self.snapshot();
                }
                return Ok(());
            }
        }
    }

    /// Serves one connection until EOF, an I/O error, or `SHUTDOWN`.
    fn serve_connection(&mut self, mut conn: Box<dyn Conn>) -> Control {
        loop {
            let payload = match read_frame(&mut conn, self.opts.max_frame) {
                Ok(Some(p)) => p,
                Ok(None) => return Control::Continue,
                Err(e) => {
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) {
                        // Idle client: the per-read timeout fired with no
                        // frame in flight. Drop the connection silently so
                        // the next client gets served.
                        return Control::Continue;
                    }
                    // Oversize/truncated frame: diagnose if the pipe is
                    // still writable, then drop the connection.
                    let _ = write_frame(&mut conn, format!("ERR Usage: {e}").as_bytes());
                    return Control::Continue;
                }
            };
            let (response, control) = match parse_request(&payload) {
                Ok(req) => self.handle(req),
                Err(msg) => (format!("ERR Usage: {msg}"), Control::Continue),
            };
            if write_frame(&mut conn, response.as_bytes()).is_err() {
                return Control::Continue; // client went away mid-response
            }
            if control == Control::Shutdown {
                return Control::Shutdown;
            }
        }
    }

    /// Dispatches one parsed request.
    fn handle(&mut self, req: Request) -> (String, Control) {
        match req {
            Request::Batch {
                deadline_ms,
                retries,
                body,
            } => (
                self.handle_batch(deadline_ms, retries, &body),
                Control::Continue,
            ),
            Request::Output => (self.handle_output(), Control::Continue),
            Request::Stats => (self.handle_stats(), Control::Continue),
            Request::Health => (self.handle_health(), Control::Continue),
            Request::Reopt => (self.handle_reopt(), Control::Continue),
            Request::Snapshot => {
                let resp = match self.snapshot() {
                    Some(true) => "OK snapshot written".to_string(),
                    Some(false) => "OK snapshot skipped (fault injected)".to_string(),
                    None => "ERR Io: snapshot write failed".to_string(),
                };
                (resp, Control::Continue)
            }
            Request::Shutdown => ("OK shutting down".to_string(), Control::Shutdown),
        }
    }

    /// The full batch lifecycle: journal (WAL), apply with deadline
    /// budget, retry transient faults with exponential backoff, roll
    /// back permanent failures.
    fn handle_batch(
        &mut self,
        deadline_ms: Option<u64>,
        retries: Option<u64>,
        body: &str,
    ) -> String {
        let budget = deadline_ms
            .map(|ms| ms.saturating_mul(self.opts.work_rate))
            .unwrap_or(0);
        let seq = self.state.next_seq();
        if let Err(e) = self
            .journal
            .append(seq, RecordKind::Batch, budget, body.as_bytes())
        {
            return format!("ERR Io: journal append failed: {e}");
        }
        let max_attempts = retries.unwrap_or(self.opts.retries) + 1;
        let mut attempt: u64 = 0;
        loop {
            attempt += 1;
            // A fresh collector per attempt: the budget is relative
            // (spent-work baseline 0), which is what makes the recorded
            // budget reproduce the same cut during journal replay.
            let collector = Collector::new();
            let guard = collector.install();
            let outcome = catch_unwind(AssertUnwindSafe(|| self.state.apply_batch(body, budget)));
            drop(guard);
            let outcome = match outcome {
                Ok(r) => r,
                Err(payload) => Err(error_from_panic(payload)),
            };
            match outcome {
                Ok(report) => {
                    self.fold(&collector.report());
                    let mut extra = String::new();
                    // `u64::is_multiple_of` needs Rust 1.87; MSRV is 1.75.
                    #[allow(clippy::manual_is_multiple_of)]
                    if self.state.reopt_every() > 0
                        && self.state.batches_applied() % self.state.reopt_every() == 0
                    {
                        extra = match self.reopt() {
                            Ok(out) => format!(" drift={:+.6}", out.drift),
                            Err(e) => format!(" reopt_failed={e}"),
                        };
                    }
                    // Snapshot after any periodic reopt, not before it:
                    // the snapshot then captures the post-reopt state, so
                    // recovery needn't replay the reopt's journal record.
                    #[allow(clippy::manual_is_multiple_of)]
                    if self.opts.snapshot_every > 0
                        && self.state.batches_applied() % self.opts.snapshot_every == 0
                    {
                        self.snapshot();
                    }
                    return format!(
                        "OK seq={} rows_in={} absorbed={} clustered={} pending={} \
                         suppressed={} rooted={} budget_exhausted={} attempts={}{}",
                        report.seq,
                        report.rows_in,
                        report.absorbed,
                        report.clustered,
                        report.pending,
                        report.rows_suppressed,
                        report.cells_rooted,
                        report.budget_exhausted,
                        attempt,
                        extra
                    );
                }
                Err(e) if transient(&e) && attempt < max_attempts => {
                    let backoff = self
                        .opts
                        .backoff_ms
                        .saturating_mul(1 << (attempt - 1).min(16));
                    std::thread::sleep(std::time::Duration::from_millis(backoff));
                }
                Err(e) => {
                    // Permanent failure: mark the journaled batch rolled
                    // back so replay skips it, and burn its seq.
                    let _ = self.journal.append(seq, RecordKind::Rollback, 0, b"");
                    self.state.note_rollback(seq);
                    return format!("ERR {}: {e} (attempts={attempt})", class(&e));
                }
            }
        }
    }

    fn handle_output(&mut self) -> String {
        let collector = Collector::new();
        let guard = collector.install();
        let out = (|| -> KanonResult<String> {
            let loss = self.state.published_loss()?;
            let csv = self.state.published_csv()?;
            Ok(format!(
                "OK rows={} loss={:.6}\n{}",
                self.state.published_rows(),
                loss,
                csv
            ))
        })();
        drop(guard);
        self.fold(&collector.report());
        out.unwrap_or_else(|e| format!("ERR {}: {e}", class(&e)))
    }

    fn handle_stats(&self) -> String {
        // Line 2 is the deterministic counter block (byte-identical
        // across thread counts and restarts of the same request
        // history); line 3 is the full report including runtime data.
        let report = self.lifetime.report();
        format!("OK\n{}\n{}", report.counters_json(), report.to_json())
    }

    fn handle_health(&self) -> String {
        format!(
            "OK {{\"status\":\"ok\",\"rows\":{},\"published\":{},\"pending\":{},\
             \"clusters\":{},\"batches\":{},\"seq\":{},\"reopts\":{},\"replayed\":{},\
             \"drift\":{}}}",
            self.state.num_rows(),
            self.state.published_rows(),
            self.state.pending_rows(),
            self.state.mature_clusters(),
            self.state.batches_applied(),
            self.state.next_seq() - 1,
            self.state.reopt_runs(),
            self.replayed,
            match self.state.last_drift() {
                Some(d) => format!("{d:.6}"),
                None => "null".to_string(),
            }
        )
    }

    fn handle_reopt(&mut self) -> String {
        match self.reopt() {
            Ok(out) => format!(
                "OK loss_incremental={:.6} loss_scratch={:.6} drift={:+.6} clusters={}",
                out.loss_incremental, out.loss_scratch, out.drift, out.clusters
            ),
            Err(e) => format!("ERR {}: {e}", class(&e)),
        }
    }

    /// Runs a re-optimization pass under the same write-ahead
    /// discipline as a batch: an `O` record is journaled (fsync) before
    /// the state mutates, so a `kill -9` at any instant after the
    /// published clustering changed recovers to the same clustering —
    /// never to the pre-reopt generalization of the same rows. A failed
    /// reopt rolls its journal record back and burns the seq, exactly
    /// like a permanently failed batch.
    fn reopt(&mut self) -> KanonResult<state::ReoptOutcome> {
        let seq = self.state.next_seq();
        self.journal
            .append(seq, RecordKind::Reopt, 0, b"")
            .map_err(|e| io_err(self.journal.path(), &e))?;
        let collector = Collector::new();
        let guard = collector.install();
        let out = self.state.reopt();
        drop(guard);
        self.fold(&collector.report());
        match out {
            Ok(outcome) => {
                debug_assert_eq!(self.state.next_seq(), seq + 1);
                Ok(outcome)
            }
            Err(e) => {
                let _ = self.journal.append(seq, RecordKind::Rollback, 0, b"");
                self.state.note_rollback(seq);
                Err(e)
            }
        }
    }

    /// Writes a snapshot; `Some(false)` = skipped by the
    /// `serve/snapshot/write` fault, `None` = I/O error. Both degrade:
    /// the daemon stays up, recovery just replays a longer journal.
    fn snapshot(&mut self) -> Option<bool> {
        let path = self.opts.state_dir.join(SNAPSHOT_FILE);
        match self.state.write_snapshot(&path) {
            Ok(written) => Some(written),
            Err(e) => {
                eprintln!("kanon serve: snapshot write failed: {e}");
                None
            }
        }
    }

    /// Folds one request's report into the lifetime collector.
    fn fold(&self, report: &Report) {
        let _g = self.lifetime.install();
        for &c in Counter::ALL.iter() {
            let v = report.counter(c);
            if v > 0 {
                count(c, v);
            }
        }
        for &c in RuntimeCounter::ALL.iter() {
            let v = report.runtime_counter(c);
            if v > 0 {
                count_runtime(c, v);
            }
        }
    }

    /// The resident state (read access for tests and the CLI).
    pub fn state(&self) -> &ServeState {
        &self.state
    }

    /// Journal records replayed during startup recovery.
    pub fn replayed(&self) -> u64 {
        self.replayed
    }
}

/// Both `Read` and `Write` (TCP and Unix streams qualify).
trait Conn: Read + Write {}
impl<T: Read + Write> Conn for T {}

/// Transient errors are worth retrying: an injected fault's `once:K`
/// ordinal advances per hit, and a worker panic may be one poisoned
/// dispatch — both can succeed on the next attempt. Everything else
/// (bad data, budget, usage) would fail identically again.
pub(crate) fn transient(e: &KanonError) -> bool {
    matches!(
        e,
        KanonError::FaultInjected { .. } | KanonError::WorkerPanic { .. }
    )
}

/// The `ERR <class>` tag mirrors the `KanonError` variant name.
fn class(e: &KanonError) -> &'static str {
    match e {
        KanonError::Core(_) => "Core",
        KanonError::FaultInjected { .. } => "FaultInjected",
        KanonError::WorkerPanic { .. } => "WorkerPanic",
        KanonError::Panic { .. } => "Panic",
        KanonError::BudgetExhausted { .. } => "BudgetExhausted",
        KanonError::Io { .. } => "Io",
        KanonError::Usage(_) => "Usage",
        KanonError::Interrupted { .. } => "Interrupted",
    }
}

fn io_err(path: &Path, e: &std::io::Error) -> KanonError {
    KanonError::Io {
        path: path.display().to_string(),
        message: e.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kanon_core::schema::SchemaBuilder;
    use kanon_core::schema::SharedSchema;
    use kanon_data::csv::{table_from_csv_with_policy, RowPolicy};
    use state::Measure;

    fn schema() -> SharedSchema {
        SchemaBuilder::new()
            .categorical_with_groups(
                "zip",
                ["10", "11", "20", "21"],
                &[&["10", "11"], &["20", "21"]],
            )
            .categorical_with_groups(
                "age",
                ["20s", "30s", "60s", "70s"],
                &[&["20s", "30s"], &["60s", "70s"]],
            )
            .build_shared()
            .unwrap()
    }

    fn base_table() -> Table {
        let csv = "10,20s\n10,30s\n11,20s\n20,60s\n21,70s\n20,70s\n";
        table_from_csv_with_policy(&schema(), csv, false, RowPolicy::Strict)
            .unwrap()
            .0
    }

    fn cfg() -> ServeConfig {
        ServeConfig {
            k: 2,
            measure: Measure::Lm,
            policy: RowPolicy::Strict,
            shard_max: 0,
            reopt_every: 0,
        }
    }

    fn opts(tag: &str) -> ServeOptions {
        let dir =
            std::env::temp_dir().join(format!("kanon-serve-lib-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        ServeOptions {
            listen: "127.0.0.1:0".to_string(),
            state_dir: dir,
            snapshot_every: 0,
            retries: 2,
            backoff_ms: 0,
            work_rate: 5_000,
            max_frame: 1 << 20,
            idle_timeout_ms: 0,
        }
    }

    fn request(d: &mut Daemon, req: &[u8]) -> String {
        let (resp, _) = d.handle(parse_request(req).unwrap());
        resp
    }

    #[test]
    fn batch_output_stats_health_round_trip() {
        let mut d = Daemon::start(base_table(), cfg(), opts("roundtrip")).unwrap();
        let resp = request(&mut d, b"BATCH\n10,20s\n");
        assert!(resp.starts_with("OK seq=1 rows_in=1"), "{resp}");
        let resp = request(&mut d, b"OUTPUT");
        assert!(resp.starts_with("OK rows="), "{resp}");
        let resp = request(&mut d, b"STATS");
        assert!(resp.contains("\"serve_batches_applied\":1"), "{resp}");
        let resp = request(&mut d, b"HEALTH");
        assert!(resp.contains("\"status\":\"ok\""), "{resp}");
        assert!(resp.contains("\"batches\":1"), "{resp}");
    }

    #[test]
    fn transient_faults_are_retried_and_succeed() {
        let mut d = Daemon::start(base_table(), cfg(), opts("retry")).unwrap();
        let _g = kanon_fault::scoped("serve/batch/apply=once:1");
        let resp = request(&mut d, b"BATCH\n10,20s\n");
        assert!(resp.starts_with("OK "), "{resp}");
        assert!(resp.contains("attempts=2"), "{resp}");
    }

    #[test]
    fn exhausted_retries_roll_the_batch_back() {
        let mut o = opts("rollback");
        o.retries = 1;
        let mut d = Daemon::start(base_table(), cfg(), o).unwrap();
        // Fire on every hit: attempt 1 and its single retry both fail.
        let _g = kanon_fault::scoped("serve/batch/apply=every:1");
        let resp = request(&mut d, b"BATCH\n10,20s\n");
        assert!(resp.starts_with("ERR FaultInjected:"), "{resp}");
        assert!(resp.contains("attempts=2"), "{resp}");
        drop(_g);
        // State untouched; the next batch gets a fresh seq past the
        // rolled-back one.
        assert_eq!(d.state().num_rows(), 6);
        let resp = request(&mut d, b"BATCH\n10,20s\n");
        assert!(resp.starts_with("OK seq=2 "), "{resp}");
    }

    #[test]
    fn deadline_maps_to_budget_and_commits_valid_partial() {
        let mut d = Daemon::start(base_table(), cfg(), opts("deadline")).unwrap();
        // An absurdly tight deadline: 1ms at 1 unit/ms.
        let mut o = d.opts.clone();
        o.work_rate = 1;
        d.opts = o;
        let resp = request(
            &mut d,
            b"BATCH deadline_ms=1\n10,60s\n11,70s\n10,70s\n11,60s\n",
        );
        // Either the tiny run fits the budget or a valid partial commits;
        // both are OK responses, never a hard failure.
        assert!(resp.starts_with("OK "), "{resp}");
    }

    #[test]
    fn crash_recovery_reaches_byte_identical_output() {
        let o = opts("recovery");
        let mut d = Daemon::start(base_table(), cfg(), o.clone()).unwrap();
        request(&mut d, b"BATCH\n10,60s\n11,70s\n");
        request(&mut d, b"BATCH\n10,70s\n11,60s\n");
        let live_out = request(&mut d, b"OUTPUT");
        let live_health = request(&mut d, b"HEALTH");
        drop(d); // "kill": no snapshot (snapshot_every=0), journal only

        let mut r = Daemon::start(base_table(), cfg(), o).unwrap();
        assert_eq!(r.replayed(), 2);
        let mut rec_out = request(&mut r, b"OUTPUT");
        // HEALTH differs only in the replayed count.
        let rec_health = request(&mut r, b"HEALTH").replace("\"replayed\":2", "\"replayed\":0");
        assert_eq!(rec_out, live_out);
        assert_eq!(rec_health, live_health);
        // And the journal tail keeps replaying over a snapshot too.
        request(&mut r, b"SNAPSHOT");
        request(&mut r, b"BATCH\n10,20s\n");
        rec_out = request(&mut r, b"OUTPUT");
        drop(r);
        let mut r2 = Daemon::start(base_table(), cfg(), opts2_keep("recovery")).unwrap();
        assert_eq!(r2.replayed(), 1); // only the post-snapshot batch
        assert_eq!(request(&mut r2, b"OUTPUT"), rec_out);
    }

    /// Same state dir as [`opts`] but *without* wiping it.
    fn opts2_keep(tag: &str) -> ServeOptions {
        let dir =
            std::env::temp_dir().join(format!("kanon-serve-lib-{tag}-{}", std::process::id()));
        ServeOptions {
            listen: "127.0.0.1:0".to_string(),
            state_dir: dir,
            snapshot_every: 0,
            retries: 2,
            backoff_ms: 0,
            work_rate: 5_000,
            max_frame: 1 << 20,
            idle_timeout_ms: 0,
        }
    }

    #[test]
    fn reopt_survives_crash_recovery() {
        // The high-stakes invariant: a reopt rewrites the published
        // generalization of already-released rows, so recovering to the
        // pre-reopt clustering would publish two different
        // generalizations of the same rows. The journaled `O` record
        // must carry the reopt through `kill -9`.
        let o = opts("reopt-recovery");
        let mut d = Daemon::start(base_table(), cfg(), o.clone()).unwrap();
        request(&mut d, b"BATCH\n10,60s\n11,70s\n");
        let resp = request(&mut d, b"REOPT");
        assert!(resp.starts_with("OK loss_incremental="), "{resp}");
        let live_out = request(&mut d, b"OUTPUT");
        let live_health = request(&mut d, b"HEALTH");
        assert!(live_health.contains("\"reopts\":1"), "{live_health}");
        drop(d); // "kill": journal only, no snapshot

        let mut r = Daemon::start(base_table(), cfg(), opts2_keep("reopt-recovery")).unwrap();
        assert_eq!(r.replayed(), 2); // the batch and the reopt
        assert_eq!(request(&mut r, b"OUTPUT"), live_out);
        let rec_health = request(&mut r, b"HEALTH").replace("\"replayed\":2", "\"replayed\":0");
        assert_eq!(rec_health, live_health);
    }

    #[test]
    fn failed_reopt_rolls_back_and_burns_its_seq() {
        // shard_max 2 forces the partitioner to split (and hence hit
        // its fail point) even on this tiny table.
        let mut c = cfg();
        c.shard_max = 2;
        let o = opts("reopt-rollback");
        let mut d = Daemon::start(base_table(), c.clone(), o).unwrap();
        request(&mut d, b"BATCH\n10,60s\n11,70s\n"); // seq 1
        let resp = {
            let _g = kanon_fault::scoped("algos/shard/partition=every:1");
            request(&mut d, b"REOPT")
        };
        assert!(resp.starts_with("ERR FaultInjected:"), "{resp}");
        // The failed reopt journaled seq 2 and rolled it back; the next
        // batch numbers past it.
        let resp = request(&mut d, b"BATCH\n10,70s\n");
        assert!(resp.starts_with("OK seq=3 "), "{resp}");
        let live_out = request(&mut d, b"OUTPUT");
        drop(d);

        let mut r = Daemon::start(base_table(), c, opts2_keep("reopt-rollback")).unwrap();
        assert_eq!(r.replayed(), 2); // both batches; the rolled-back reopt is skipped
        assert_eq!(request(&mut r, b"OUTPUT"), live_out);
    }

    #[cfg(unix)]
    #[test]
    fn bind_refuses_to_clobber_a_regular_file() {
        let dir = std::env::temp_dir().join(format!("kanon-serve-bind-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        // A typo'd --listen pointing at a real file must error, not
        // delete the file.
        let file = dir.join("precious.csv");
        std::fs::write(&file, "do not delete\n").unwrap();
        let err = match Listener::bind(file.to_str().unwrap()) {
            Ok(_) => panic!("bind accepted a regular file as --listen"),
            Err(e) => e,
        };
        assert_eq!(err.kind(), std::io::ErrorKind::AlreadyExists);
        assert_eq!(
            std::fs::read_to_string(&file).unwrap(),
            "do not delete\n",
            "bind deleted an existing regular file"
        );
        // A stale socket left by a killed process is still cleaned up.
        let sock = dir.join("serve.sock");
        let (l, _) = Listener::bind(sock.to_str().unwrap()).unwrap();
        drop(l); // the socket file outlives the listener
        assert!(sock.exists());
        let (_l, addr) = Listener::bind(sock.to_str().unwrap()).unwrap();
        assert_eq!(addr, sock.to_str().unwrap());
    }

    #[test]
    fn idle_connection_cannot_wedge_the_daemon() {
        let mut o = opts("idle");
        o.idle_timeout_ms = 100;
        let state_dir = o.state_dir.clone();
        let mut d = Daemon::start(base_table(), cfg(), o).unwrap();
        let handle = std::thread::spawn(move || d.run());
        let addr_path = state_dir.join(ADDR_FILE);
        let addr = loop {
            if let Ok(text) = std::fs::read_to_string(&addr_path) {
                if text.ends_with('\n') {
                    break text.trim().to_string();
                }
            }
            std::thread::sleep(std::time::Duration::from_millis(5));
        };
        // A client that connects and sends nothing is dropped after the
        // idle timeout instead of blocking everyone else forever.
        let silent = std::net::TcpStream::connect(&addr).unwrap();
        let mut conn = std::net::TcpStream::connect(&addr).unwrap();
        write_frame(&mut conn, b"HEALTH").unwrap();
        let resp = read_frame(&mut conn, 1 << 20).unwrap().unwrap();
        assert!(resp.starts_with(b"OK "), "{resp:?}");
        drop(silent);
        write_frame(&mut conn, b"SHUTDOWN").unwrap();
        let resp = read_frame(&mut conn, 1 << 20).unwrap().unwrap();
        assert!(resp.starts_with(b"OK shutting down"), "{resp:?}");
        handle.join().unwrap().unwrap();
    }

    #[test]
    fn usage_errors_do_not_kill_the_connection_loop() {
        let mut d = Daemon::start(base_table(), cfg(), opts("usage")).unwrap();
        let (resp, control) = match parse_request(b"NOPE") {
            Ok(req) => d.handle(req),
            Err(msg) => (format!("ERR Usage: {msg}"), Control::Continue),
        };
        assert!(resp.starts_with("ERR Usage:"), "{resp}");
        assert_eq!(control, Control::Continue);
        // Bad rows under Strict: typed Core error, state intact.
        let resp = request(&mut d, b"BATCH\n99,99\n");
        assert!(resp.starts_with("ERR Core:"), "{resp}");
        assert_eq!(d.state().num_rows(), 6);
    }

    #[test]
    fn tcp_listener_serves_frames_end_to_end() {
        let o = opts("tcp");
        let state_dir = o.state_dir.clone();
        let mut d = Daemon::start(base_table(), cfg(), o).unwrap();
        let handle = std::thread::spawn(move || d.run());
        // Wait for the address file.
        let addr_path = state_dir.join(ADDR_FILE);
        let addr = loop {
            if let Ok(text) = std::fs::read_to_string(&addr_path) {
                if text.ends_with('\n') {
                    break text.trim().to_string();
                }
            }
            std::thread::sleep(std::time::Duration::from_millis(5));
        };
        let mut conn = std::net::TcpStream::connect(&addr).unwrap();
        write_frame(&mut conn, b"BATCH\n10,20s\n").unwrap();
        let resp = read_frame(&mut conn, 1 << 20).unwrap().unwrap();
        assert!(resp.starts_with(b"OK seq=1"), "{resp:?}");
        write_frame(&mut conn, b"SHUTDOWN").unwrap();
        let resp = read_frame(&mut conn, 1 << 20).unwrap().unwrap();
        assert!(resp.starts_with(b"OK shutting down"), "{resp:?}");
        handle.join().unwrap().unwrap();
    }
}
