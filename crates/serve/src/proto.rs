//! Wire protocol of the serve daemon: length-prefixed frames carrying
//! small text requests.
//!
//! ## Frame format
//!
//! Every request and every response is one frame: a 4-byte big-endian
//! payload length followed by exactly that many payload bytes. The
//! request payload is UTF-8 text — a command line, then (for `BATCH`)
//! the batch body:
//!
//! ```text
//! BATCH [deadline_ms=N] [retries=N] [absorb_epsilon=X] '\n' <csv rows, no header>
//! OUTPUT | STATS | HEALTH | REOPT | SNAPSHOT | SHUTDOWN
//! ```
//!
//! `absorb_epsilon` is a finite non-negative float overriding the
//! daemon's configured ε-bounded absorption threshold for this batch
//! (see `state::ServeState::apply_batch`).
//!
//! Responses are text frames starting `OK …` or `ERR <class>: <msg>`
//! (`class` mirrors the [`kanon_core::KanonError`] variant name). The
//! parser here is total: any byte sequence maps to `Ok(Request)` or
//! `Err(String)`, never a panic — property-tested in
//! `tests/proto_proptest.rs`.

use std::io::{self, Read, Write};

/// A parsed client request.
///
/// (No `Eq`: `absorb_epsilon` is a float. It is parsed to be finite,
/// so `PartialEq` behaves totally on every value this module emits.)
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Append a micro-batch of rows (CSV, no header) to the table.
    Batch {
        /// Request deadline in milliseconds; mapped onto the
        /// deterministic work budget via `KANON_SERVE_WORK_RATE`.
        deadline_ms: Option<u64>,
        /// Retry-attempt override for this request.
        retries: Option<u64>,
        /// Per-request override of the ε-bounded absorption threshold
        /// (finite, non-negative; `None` = use the daemon's config).
        absorb_epsilon: Option<f64>,
        /// The CSV body (rows only, no header line).
        body: String,
    },
    /// Fetch the generalized CSV of every published row.
    Output,
    /// Fetch the daemon's aggregated `kanon_obs` report as JSON.
    Stats,
    /// Fetch a one-line JSON health summary.
    Health,
    /// Force a from-scratch re-optimization pass.
    Reopt,
    /// Force a state snapshot.
    Snapshot,
    /// Gracefully stop the daemon.
    Shutdown,
}

/// Reads one frame. Returns `Ok(None)` on clean end-of-stream (EOF
/// before the first length byte); a frame longer than `max_frame`
/// bytes or truncated mid-frame is an error.
pub fn read_frame(r: &mut impl Read, max_frame: u64) -> io::Result<Option<Vec<u8>>> {
    let mut len_buf = [0u8; 4];
    let mut got = 0;
    while got < 1 {
        match r.read(&mut len_buf[..1])? {
            0 => return Ok(None),
            n => got += n,
        }
    }
    r.read_exact(&mut len_buf[1..])?;
    let len = u32::from_be_bytes(len_buf) as u64;
    if len > max_frame {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds the {max_frame}-byte limit"),
        ));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

/// Writes one frame and flushes.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    let len = u32::try_from(payload.len()).map_err(|_| {
        io::Error::new(
            io::ErrorKind::InvalidInput,
            "frame payload exceeds u32 length",
        )
    })?;
    w.write_all(&len.to_be_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Parses one request payload. Total over arbitrary bytes: every input
/// yields `Ok` or a diagnostic `Err`, never a panic.
pub fn parse_request(payload: &[u8]) -> Result<Request, String> {
    let text = std::str::from_utf8(payload).map_err(|e| format!("request is not UTF-8: {e}"))?;
    let (head, body) = match text.split_once('\n') {
        Some((h, b)) => (h, b),
        None => (text, ""),
    };
    let mut words = head.split_whitespace();
    let cmd = words.next().unwrap_or("");
    let simple = |req: Request, words: &mut dyn Iterator<Item = &str>| match words.next() {
        None => Ok(req),
        Some(extra) => Err(format!(
            "command `{cmd}` takes no arguments (got `{extra}`)"
        )),
    };
    match cmd {
        "BATCH" => {
            let mut deadline_ms = None;
            let mut retries = None;
            let mut absorb_epsilon = None;
            for opt in words {
                let (key, value) = opt
                    .split_once('=')
                    .ok_or_else(|| format!("BATCH option `{opt}` is not `key=value`"))?;
                match key {
                    "deadline_ms" | "retries" => {
                        let value: u64 = value.parse().map_err(|_| {
                            format!("BATCH option `{key}` needs an unsigned integer")
                        })?;
                        if key == "deadline_ms" {
                            deadline_ms = Some(value);
                        } else {
                            retries = Some(value);
                        }
                    }
                    "absorb_epsilon" => {
                        let value: f64 = value.parse().map_err(|_| {
                            "BATCH option `absorb_epsilon` needs a number".to_string()
                        })?;
                        if !value.is_finite() || value.total_cmp(&0.0).is_lt() {
                            return Err(format!(
                                "BATCH option `absorb_epsilon` must be finite and \
                                 non-negative (got `{value}`)"
                            ));
                        }
                        absorb_epsilon = Some(value);
                    }
                    other => {
                        return Err(format!(
                            "unknown BATCH option `{other}` \
                             (expected deadline_ms|retries|absorb_epsilon)"
                        ))
                    }
                }
            }
            Ok(Request::Batch {
                deadline_ms,
                retries,
                absorb_epsilon,
                body: body.to_string(),
            })
        }
        "OUTPUT" => simple(Request::Output, &mut words),
        "STATS" => simple(Request::Stats, &mut words),
        "HEALTH" => simple(Request::Health, &mut words),
        "REOPT" => simple(Request::Reopt, &mut words),
        "SNAPSHOT" => simple(Request::Snapshot, &mut words),
        "SHUTDOWN" => simple(Request::Shutdown, &mut words),
        "" => Err("empty request".to_string()),
        other => Err(format!(
            "unknown command `{other}` (expected BATCH|OUTPUT|STATS|HEALTH|REOPT|SNAPSHOT|SHUTDOWN)"
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"HEALTH").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r, 1024).unwrap().unwrap(), b"HEALTH");
        assert_eq!(read_frame(&mut r, 1024).unwrap().unwrap(), b"");
        assert!(read_frame(&mut r, 1024).unwrap().is_none());
    }

    #[test]
    fn oversized_frames_are_rejected() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &[0u8; 100]).unwrap();
        let err = read_frame(&mut &buf[..], 10).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn truncated_frames_are_errors_not_hangs() {
        // Length says 100 bytes, stream has 3.
        let mut buf = 100u32.to_be_bytes().to_vec();
        buf.extend_from_slice(b"abc");
        assert!(read_frame(&mut &buf[..], 1024).is_err());
        // Truncated length prefix.
        let buf = [0u8, 0u8];
        assert!(read_frame(&mut &buf[..], 1024).is_err());
    }

    #[test]
    fn requests_parse() {
        assert_eq!(parse_request(b"OUTPUT").unwrap(), Request::Output);
        assert_eq!(parse_request(b"SHUTDOWN").unwrap(), Request::Shutdown);
        let req = parse_request(b"BATCH deadline_ms=50 retries=1\na,b\nc,d\n").unwrap();
        assert_eq!(
            req,
            Request::Batch {
                deadline_ms: Some(50),
                retries: Some(1),
                absorb_epsilon: None,
                body: "a,b\nc,d\n".to_string()
            }
        );
        let req = parse_request(b"BATCH\n").unwrap();
        assert_eq!(
            req,
            Request::Batch {
                deadline_ms: None,
                retries: None,
                absorb_epsilon: None,
                body: String::new()
            }
        );
        let req = parse_request(b"BATCH absorb_epsilon=0.05\na,b\n").unwrap();
        assert_eq!(
            req,
            Request::Batch {
                deadline_ms: None,
                retries: None,
                absorb_epsilon: Some(0.05),
                body: "a,b\n".to_string()
            }
        );
    }

    #[test]
    fn bad_epsilons_are_rejected() {
        for bad in ["abc", "NaN", "inf", "-0.5", "-1"] {
            let req = format!("BATCH absorb_epsilon={bad}\n");
            let err = parse_request(req.as_bytes()).unwrap_err();
            assert!(err.contains("absorb_epsilon"), "{bad}: {err}");
        }
        // -0.0 parses, but it orders below +0.0 under total order —
        // rejecting it keeps a negative-zero bit pattern out of the
        // journal's ε encoding.
        assert!(parse_request(b"BATCH absorb_epsilon=-0.0\n").is_err());
    }

    #[test]
    fn bad_requests_are_diagnosed() {
        assert!(parse_request(b"").unwrap_err().contains("empty"));
        assert!(parse_request(b"NOPE")
            .unwrap_err()
            .contains("unknown command"));
        assert!(parse_request(b"OUTPUT extra")
            .unwrap_err()
            .contains("takes no arguments"));
        assert!(parse_request(b"BATCH deadline_ms=abc\n")
            .unwrap_err()
            .contains("unsigned"));
        assert!(parse_request(b"BATCH nope=1\n")
            .unwrap_err()
            .contains("unknown BATCH option"));
        assert!(parse_request(&[0xff, 0xfe]).unwrap_err().contains("UTF-8"));
    }
}
