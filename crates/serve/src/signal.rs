//! Minimal zero-dep signal handling via the classic self-pipe trick.
//!
//! A signal handler may only call async-signal-safe functions, so the
//! handler does exactly one thing: `write()` a single byte (the signal
//! number) to a pipe. A normal watcher thread blocks in `read()` on the
//! other end and runs the user callback outside signal context.
//!
//! Only SIGINT and SIGTERM are hooked, and only once per process
//! ([`watch`] is idempotent after the first call). On non-Unix targets
//! the module compiles to a no-op stub.

/// A signal the watcher reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sig {
    /// SIGINT (Ctrl-C). Conventional exit code 130.
    Int,
    /// SIGTERM. Conventional exit code 143.
    Term,
}

impl Sig {
    /// The cause string used by `KanonError::Interrupted`.
    pub fn cause(self) -> &'static str {
        match self {
            Sig::Int => "SIGINT",
            Sig::Term => "SIGTERM",
        }
    }

    /// The conventional 128+signo shell exit code.
    pub fn exit_code(self) -> i32 {
        match self {
            Sig::Int => 130,
            Sig::Term => 143,
        }
    }
}

#[cfg(unix)]
pub use imp::watch;

#[cfg(unix)]
mod imp {
    use super::Sig;
    use std::sync::atomic::{AtomicI32, Ordering};
    use std::sync::OnceLock;

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
        fn pipe(fds: *mut i32) -> i32;
        fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
        fn write(fd: i32, buf: *const u8, count: usize) -> isize;
    }

    /// Write end of the self-pipe; set once before the handlers are
    /// installed, read-only (and async-signal-safely) afterwards.
    static WRITE_FD: AtomicI32 = AtomicI32::new(-1);

    /// Async-signal-safe handler: forward the signal number as one byte
    /// down the pipe. `write(2)` is on the async-signal-safe list;
    /// nothing else here allocates, locks, or formats.
    extern "C" fn forward(signum: i32) {
        let fd = WRITE_FD.load(Ordering::Relaxed);
        if fd >= 0 {
            let byte = signum as u8;
            // SAFETY: fd is a valid pipe write end for the whole process
            // lifetime (never closed), and `byte` outlives the call.
            unsafe {
                let _ = write(fd, &byte, 1);
            }
        }
    }

    /// Installs SIGINT/SIGTERM handlers and spawns the watcher thread;
    /// `on_signal` runs on that thread for every delivered signal. Only
    /// the first call installs anything — later calls are ignored (the
    /// process has one shutdown policy).
    pub fn watch(on_signal: Box<dyn Fn(Sig) + Send>) {
        static INSTALLED: OnceLock<()> = OnceLock::new();
        INSTALLED.get_or_init(|| {
            let mut fds = [-1i32; 2];
            // SAFETY: `fds` is a valid out-pointer for two file
            // descriptors, the only thing pipe(2) writes.
            let rc = unsafe { pipe(fds.as_mut_ptr()) };
            if rc != 0 {
                // No pipe, no graceful shutdown — the default signal
                // disposition (immediate termination) still applies.
                return;
            }
            WRITE_FD.store(fds[1], Ordering::Relaxed);
            // SAFETY: `forward` is an `extern "C" fn(i32)` — exactly the
            // handler ABI signal(2) expects — and touches only
            // async-signal-safe state.
            unsafe {
                signal(SIGINT, forward as *const () as usize);
                signal(SIGTERM, forward as *const () as usize);
            }
            let read_fd = fds[0];
            std::thread::spawn(move || loop {
                let mut byte = 0u8;
                // SAFETY: read_fd is the pipe read end, owned solely by
                // this thread; `byte` is a valid 1-byte buffer.
                let n = unsafe { read(read_fd, &mut byte, 1) };
                if n != 1 {
                    if n < 0 {
                        continue; // EINTR etc.
                    }
                    return; // EOF: write end gone, process exiting
                }
                let sig = match i32::from(byte) {
                    SIGINT => Sig::Int,
                    SIGTERM => Sig::Term,
                    _ => continue,
                };
                on_signal(sig);
            });
        });
    }
}

/// No-op stub: non-Unix targets keep the default signal disposition.
#[cfg(not(unix))]
pub fn watch(_on_signal: Box<dyn Fn(Sig) + Send>) {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sig_metadata_follows_shell_convention() {
        assert_eq!(Sig::Int.cause(), "SIGINT");
        assert_eq!(Sig::Term.cause(), "SIGTERM");
        assert_eq!(Sig::Int.exit_code(), 130);
        assert_eq!(Sig::Term.exit_code(), 143);
    }
}
