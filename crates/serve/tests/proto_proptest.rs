//! Protocol robustness: arbitrary bytes — unframed garbage, framed
//! garbage, and truncated streams — never panic the daemon or the
//! protocol layer, and the daemon keeps answering `HEALTH` afterwards.
//!
//! One shared daemon serves every case over real TCP connections, so
//! the property covers the full accept → frame → parse → respond path,
//! not just the parser.

use std::io::Write;
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::OnceLock;

use kanon_core::schema::{SchemaBuilder, SharedSchema};
use kanon_data::csv::{table_from_csv_with_policy, RowPolicy};
use kanon_serve::proto::{parse_request, read_frame, write_frame};
use kanon_serve::state::{Measure, ServeConfig};
use kanon_serve::{Daemon, ServeOptions, ADDR_FILE};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn schema() -> SharedSchema {
    SchemaBuilder::new()
        .categorical_with_groups(
            "zip",
            ["10", "11", "20", "21"],
            &[&["10", "11"], &["20", "21"]],
        )
        .categorical_with_groups(
            "age",
            ["20s", "30s", "60s", "70s"],
            &[&["20s", "30s"], &["60s", "70s"]],
        )
        .build_shared()
        .unwrap()
}

/// Address of the shared fuzz-target daemon, started on first use.
fn daemon_addr() -> &'static str {
    static ADDR: OnceLock<String> = OnceLock::new();
    ADDR.get_or_init(|| {
        let dir: PathBuf =
            std::env::temp_dir().join(format!("kanon-serve-fuzz-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let base = table_from_csv_with_policy(
            &schema(),
            "10,20s\n10,30s\n11,20s\n20,60s\n21,70s\n20,70s\n",
            false,
            RowPolicy::Strict,
        )
        .unwrap()
        .0;
        let cfg = ServeConfig {
            k: 2,
            measure: Measure::Lm,
            policy: RowPolicy::SuppressRow,
            shard_max: 0,
            reopt_every: 0,
            absorb_epsilon: 0.0,
        };
        let mut opts = ServeOptions::new(dir.clone());
        opts.max_frame = 1 << 16;
        let daemon = Daemon::start(base, cfg, opts).unwrap();
        std::thread::spawn(move || daemon.run());
        let addr_path = dir.join(ADDR_FILE);
        loop {
            if let Ok(text) = std::fs::read_to_string(&addr_path) {
                if text.ends_with('\n') {
                    return text.trim().to_string();
                }
            }
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
    })
}

fn random_bytes(seed: u64, max_len: usize) -> Vec<u8> {
    let mut rng = StdRng::seed_from_u64(seed);
    let len = rng.gen_range(0usize..max_len);
    // `u64::is_multiple_of` needs Rust 1.87; MSRV is 1.75.
    #[allow(clippy::manual_is_multiple_of)]
    if seed % 3 == 0 {
        // Protocol-shaped text garbage: more likely to reach deep paths.
        const PALETTE: &[u8] =
            b"BATCH OUTPUT STATS HEALTH REOPT SNAPSHOT SHUTDOWN deadline_ms=retries=absorb_epsilon=.05-\n,0129ab\xff";
        (0..len)
            .map(|_| PALETTE[rng.gen_range(0..PALETTE.len())])
            .collect()
    } else {
        (0..len).map(|_| rng.gen()).collect()
    }
}

/// The daemon must still answer HEALTH on a fresh connection.
fn assert_daemon_alive() {
    let mut conn = TcpStream::connect(daemon_addr()).expect("daemon died: connect failed");
    write_frame(&mut conn, b"HEALTH").unwrap();
    let resp = read_frame(&mut conn, 1 << 16)
        .expect("daemon died: no response")
        .expect("daemon died: closed stream");
    assert!(resp.starts_with(b"OK "), "unhealthy: {resp:?}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn parse_request_is_total_over_arbitrary_bytes(seed in any::<u64>()) {
        let bytes = random_bytes(seed, 512);
        let _ = parse_request(&bytes); // must not panic
    }

    #[test]
    fn read_frame_is_total_over_arbitrary_streams(seed in any::<u64>()) {
        let bytes = random_bytes(seed, 512);
        let mut r = &bytes[..];
        // Drain the stream; every outcome (frame, EOF, error) is fine,
        // it just must not panic or loop forever.
        for _ in 0..512 {
            match read_frame(&mut r, 1 << 10) {
                Ok(Some(_)) => continue,
                Ok(None) | Err(_) => break,
            }
        }
    }

    #[test]
    fn unframed_garbage_never_kills_the_daemon(seed in any::<u64>()) {
        let mut conn = TcpStream::connect(daemon_addr()).unwrap();
        let _ = conn.write_all(&random_bytes(seed, 2048));
        drop(conn); // close mid-whatever the daemon thinks this is
        assert_daemon_alive();
    }

    #[test]
    fn framed_garbage_never_kills_the_daemon(seed in any::<u64>()) {
        let mut conn = TcpStream::connect(daemon_addr()).unwrap();
        if write_frame(&mut conn, &random_bytes(seed, 2048)).is_ok() {
            // Any single response frame (or a dropped connection) is
            // acceptable; the daemon keeps the connection open for more
            // frames, so don't drain to EOF.
            conn.set_read_timeout(Some(std::time::Duration::from_secs(5))).unwrap();
            let _ = read_frame(&mut conn, 1 << 16);
        }
        drop(conn);
        assert_daemon_alive();
    }
}
