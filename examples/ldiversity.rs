//! ℓ-diversity inside the paper's framework — the future-work item of
//! Sec. II ("we believe ℓ-diversity fits also in our framework"),
//! implemented: the agglomerative algorithm with a diversity-aware
//! maturity condition, demonstrated on the CMC workload whose sensitive
//! attribute is the contraceptive-method choice.
//!
//! Run with: `cargo run --release --example ldiversity`

use kanon::algos::{l_diverse_k_anonymize, LDiverseConfig};
use kanon::prelude::*;
use kanon::verify::{is_l_diverse, l_diversity_level};

fn main() {
    let labeled = kanon::data::cmc::generate(300, 21);
    let table = &labeled.table;
    let sensitive = &labeled.labels; // 1 = no use, 2 = long-term, 3 = short-term
    let costs = NodeCostTable::compute(table, &EntropyMeasure);
    let k = 4;

    // Plain k-anonymity: private *identities*, but a homogeneous cluster
    // still leaks everyone's sensitive value.
    let plain = agglomerative_k_anonymize(table, &costs, &AgglomerativeConfig::new(k)).unwrap();
    let plain_l = l_diversity_level(&plain.table, sensitive).unwrap();
    println!(
        "plain {k}-anonymization: loss = {:.4}, but distinct ℓ-diversity level = {plain_l}",
        plain.loss
    );
    if plain_l == 1 {
        println!("  → some equivalence class is sensitively homogeneous: full disclosure!");
    }

    // Diversity-aware anonymization: clusters must also mix ≥ ℓ methods.
    for l in [2, 3] {
        let out =
            l_diverse_k_anonymize(table, &costs, sensitive, &LDiverseConfig::new(k, l)).unwrap();
        assert!(is_l_diverse(&out.table, sensitive, l).unwrap());
        assert!(kanon::verify::is_k_anonymous(&out.table, k));
        println!(
            "{k}-anonymous + distinct-{l}-diverse: loss = {:.4} \
             ({:+.1}% vs plain), {} clusters",
            out.loss,
            100.0 * (out.loss / plain.loss - 1.0),
            out.clustering.num_clusters()
        );
    }

    println!(
        "\nthe diversity premium is the price of protecting the sensitive value\n\
         itself, not just the identity — exactly the gap ℓ-diversity was\n\
         designed to close (Machanavajjhala et al., ICDE 2006)."
    );
}
