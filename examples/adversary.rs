//! The security story of Sec. IV-A, played out:
//!
//! 1. naive (1,k)-anonymity is worthless — the paper's counterexample
//!    (identity rows + a suppressed tail) re-identifies most individuals;
//! 2. (k,k)-anonymity defeats the realistic adversary (Adversary 1) but
//!    can fall to the omniscient Adversary 2, who knows the exact member
//!    set and prunes non-matches via perfect-matching reasoning;
//! 3. global (1,k)-anonymity (Algorithm 6) restores full k-anonymity-level
//!    protection even against Adversary 2.
//!
//! Run with: `cargo run --release --example adversary`

use kanon::algos::global_1k_from_kk;
use kanon::prelude::*;
use kanon::verify::{Adversary1, Adversary2};
use std::sync::Arc;

fn main() {
    let k = 3;

    // ---------------------------------------------------------------
    // Act 1: the (1,k) trap (Sec. IV-A counterexample).
    // ---------------------------------------------------------------
    println!("=== Act 1: (1,k)-anonymity is not enough ===");
    let schema = SchemaBuilder::new()
        .categorical(
            "city",
            ["Athens", "Bergen", "Cusco", "Dakar", "Esbjerg", "Fukuoka"],
        )
        .build_shared()
        .unwrap();
    let rows: Vec<Record> = (0..6).map(|v| Record::from_raw([v])).collect();
    let table = Table::new(Arc::clone(&schema), rows).unwrap();

    // Leave n−k records untouched; fully suppress the last k.
    let identity = GeneralizedTable::identity_of(&table);
    let star = GeneralizedRecord::new(schema.suppressed_nodes());
    let mut bad_rows: Vec<GeneralizedRecord> = (0..3).map(|i| identity.row(i).clone()).collect();
    bad_rows.extend((0..3).map(|_| star.clone()));
    let bad = GeneralizedTable::new(Arc::clone(&schema), bad_rows).unwrap();

    let one_k = kanon::verify::one_k_level(&table, &bad).unwrap();
    println!("the published table is (1,{one_k})-anonymous — sounds private…");
    let report = Adversary2.attack(&table, &bad, k).unwrap();
    println!(
        "…but the matching adversary re-identifies rows {:?} outright.\n",
        report.reidentified_rows()
    );

    // ---------------------------------------------------------------
    // Act 2: (k,k) vs the two adversaries.
    // ---------------------------------------------------------------
    println!("=== Act 2: (k,k)-anonymity and the omniscient adversary ===");
    let table = kanon::data::art::generate(60, 7);
    let costs = NodeCostTable::compute(&table, &EntropyMeasure);
    let kk = kk_anonymize(&table, &costs, &KkConfig::new(k)).unwrap();

    let r1 = Adversary1.attack(&table, &kk.table, k).unwrap();
    println!(
        "Adversary 1 (knows everyone's public data): weakest link {} ≥ k = {k} → defended",
        r1.min_candidates()
    );
    assert!(r1.breached_rows().is_empty());

    let r2 = Adversary2.attack(&table, &kk.table, k).unwrap();
    println!(
        "Adversary 2 (also knows WHO is in the table): weakest link {} — {} record(s) breached",
        r2.min_candidates(),
        r2.breached_rows().len()
    );

    // ---------------------------------------------------------------
    // Act 3: Algorithm 6 closes the gap.
    // ---------------------------------------------------------------
    println!("\n=== Act 3: global (1,k)-anonymity ===");
    let global = global_1k_from_kk(&table, &kk.table, &costs, k).unwrap();
    let r2 = Adversary2.attack(&table, &global.table, k).unwrap();
    println!(
        "after Algorithm 6 ({} upgrades for {} deficient records): weakest link {} ≥ k = {k} → defended",
        global.upgrade_steps, global.deficient_records, r2.min_candidates()
    );
    assert!(r2.breached_rows().is_empty());
    println!(
        "extra information loss paid for global protection: {:.4} → {:.4} bits/entry ({:+.1}%)",
        kk.loss,
        global.loss,
        100.0 * (global.loss / kk.loss - 1.0)
    );
    println!(
        "\nthe paper's practical advice: when the adversary plausibly knows the\n\
         exact member set, convert to global (1,k); otherwise (k,k) already\n\
         provides k-anonymity-level protection at lower cost."
    );
}
