//! The paper's motivating scenario (Sec. I): a hospital must publish
//! patient data for research while protecting the individuals. The
//! public attributes (age, gender, zipcode) can be linked against a voter
//! register; the private attribute (diagnosis) must not be attributable
//! to fewer than k candidates.
//!
//! This example builds a custom schema with `SchemaBuilder`, anonymizes
//! with (k,k)-anonymity, and shows that the published table resists
//! linkage while staying useful.
//!
//! Run with: `cargo run --release --example hospital`

use kanon::prelude::*;
use kanon::verify::{Adversary1, AnonymityProfile};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

fn main() {
    // Public schema: the quasi-identifiers the adversary can look up.
    // Zipcodes generalize by prefix (1000-blocks), ages by 5/10-year bands
    // — exactly the example generalizations of Sec. III.
    let zipcodes: Vec<String> = (0..40).map(|i| format!("68{:03}", 400 + i)).collect();
    let schema = SchemaBuilder::new()
        .numeric_with_intervals("age", 18, 97, &[5, 10, 20])
        .categorical("gender", ["M", "F"])
        .categorical_with_groups(
            "zipcode",
            zipcodes.iter().map(String::as_str),
            &[
                // Two neighbourhoods of 20 zip codes each.
                &[
                    "68400", "68401", "68402", "68403", "68404", "68405", "68406", "68407",
                    "68408", "68409", "68410", "68411", "68412", "68413", "68414", "68415",
                    "68416", "68417", "68418", "68419",
                ],
                &[
                    "68420", "68421", "68422", "68423", "68424", "68425", "68426", "68427",
                    "68428", "68429", "68430", "68431", "68432", "68433", "68434", "68435",
                    "68436", "68437", "68438", "68439",
                ],
            ],
        )
        .build_shared()
        .unwrap();

    // Synthesize a patient roster (public part) + diagnoses (private part).
    let diagnoses = ["flu", "diabetes", "fracture", "hypertension", "asthma"];
    let mut rng = StdRng::seed_from_u64(2024);
    let n = 400;
    let mut rows = Vec::with_capacity(n);
    let mut private = Vec::with_capacity(n);
    for _ in 0..n {
        let age = rng.gen_range(0..80u32);
        let gender = rng.gen_range(0..2u32);
        let zip = rng.gen_range(0..40u32);
        rows.push(Record::from_raw([age, gender, zip]));
        private.push(diagnoses[rng.gen_range(0..diagnoses.len())]);
    }
    let table = Table::new(Arc::clone(&schema), rows).unwrap();

    println!("hospital roster: {} patients", table.num_rows());
    println!(
        "example patient: ({}) with diagnosis {:?}\n",
        table.row(0).display(&schema),
        private[0]
    );

    // Publish with (k,k)-anonymity, k = 4, LM measure.
    let k = 4;
    let costs = NodeCostTable::compute(&table, &LmMeasure);
    let published = kk_anonymize(&table, &costs, &KkConfig::new(k)).unwrap();

    println!(
        "published (k,k)-anonymized table (k = {k}), LM loss = {:.3}:",
        published.loss
    );
    for (grec, diagnosis) in published.table.rows().iter().zip(&private).take(6) {
        println!("  {}  | diagnosis: {}", grec.display(&schema), diagnosis);
    }

    // The linkage test: an adversary holding the voter register (all
    // public records) tries to pin each patient down.
    let report = Adversary1.attack(&table, &published.table, k).unwrap();
    println!(
        "\nlinkage attack with full public knowledge: weakest patient links to {} records \
         (k = {k}); breached: {}",
        report.min_candidates(),
        report.breached_rows().len()
    );
    assert!(report.breached_rows().is_empty());

    let profile = AnonymityProfile::compute(&table, &published.table).unwrap();
    println!(
        "anonymity profile: (1,k) {} / (k,1) {} / (k,k) {}",
        profile.one_k, profile.k_one, profile.kk
    );

    // Utility contrast: classic k-anonymity on the same data loses more.
    let classic = agglomerative_k_anonymize(&table, &costs, &AgglomerativeConfig::new(k)).unwrap();
    println!(
        "\nutility: (k,k) keeps {:.1}% of the information classic k-anonymity \
         gives up (LM {:.3} vs {:.3})",
        100.0 * (1.0 - published.loss / classic.loss),
        published.loss,
        classic.loss
    );
}
