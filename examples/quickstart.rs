//! Quickstart: anonymize a table under all of the paper's notions and
//! compare the utility you keep.
//!
//! Run with: `cargo run --release --example quickstart`

use kanon::prelude::*;
use kanon::verify::AnonymityProfile;

fn main() {
    // 1. A dataset. Here: the paper's synthetic ART workload (Sec. VI);
    //    swap in `kanon::data::adult::generate` or your own CSV via
    //    `kanon::data::table_from_csv` + a `SchemaBuilder` schema.
    let table = kanon::data::art::generate(300, 42);
    println!(
        "original table: {} records, {} quasi-identifiers\n",
        table.num_rows(),
        table.num_attrs()
    );

    // 2. A measure. The entropy measure (Eq. 3) charges each generalized
    //    entry the conditional entropy of the subset it was blurred into.
    let costs = NodeCostTable::compute(&table, &EntropyMeasure);

    let k = 5;

    // 3a. Classic k-anonymity via the paper's agglomerative algorithm
    //     (Algorithm 1, distance D3 — one of the two best in the paper).
    let kanon_out = agglomerative_k_anonymize(
        &table,
        &costs,
        &AgglomerativeConfig::new(k).with_distance(ClusterDistance::D3),
    )
    .unwrap();

    // 3b. (k,k)-anonymity (Algorithms 4 + 5): same practical privacy
    //     against an adversary who knows individuals' public data, with
    //     strictly better utility.
    let kk_out = kk_anonymize(&table, &costs, &KkConfig::new(k)).unwrap();

    // 3c. Global (1,k)-anonymity (…+ Algorithm 6): safe even against an
    //     adversary who knows the exact member set of the database.
    let global_out = global_1k_anonymize(&table, &costs, &GlobalConfig::new(k)).unwrap();

    println!("information loss (entropy measure, lower = more utility):");
    println!("  k-anonymity       : {:.4} bits/entry", kanon_out.loss);
    println!(
        "  (k,k)-anonymity   : {:.4} bits/entry   ({:+.1}% vs k-anon)",
        kk_out.loss,
        100.0 * (kk_out.loss / kanon_out.loss - 1.0)
    );
    println!(
        "  global (1,k)      : {:.4} bits/entry   ({} records needed upgrading)",
        global_out.loss, global_out.deficient_records
    );

    // 4. Verify what was achieved — never trust, always check.
    for (name, gtable) in [
        ("k-anonymity", &kanon_out.table),
        ("(k,k)", &kk_out.table),
        ("global (1,k)", &global_out.table),
    ] {
        let p = AnonymityProfile::compute(&table, gtable).unwrap();
        println!(
            "  {name:<14} profile: k-anon {}, (1,k) {}, (k,1) {}, (k,k) {}, global {}",
            p.k_anonymity, p.one_k, p.k_one, p.kk, p.global_1k
        );
    }

    // 5. Peek at the published data.
    println!("\nfirst rows of the (k,k)-anonymized table:");
    for i in 0..5 {
        println!("  {}", kk_out.table.row(i).display(table.schema()));
    }
}
