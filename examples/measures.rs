//! Comparing information-loss measures on the same anonymization task —
//! the paper's Sec. II tour (entropy, LM, tree, non-uniform entropy, DM,
//! CM) as running code, including CSV export of the published table.
//!
//! Run with: `cargo run --release --example measures`

use kanon::measures::{
    classification_metric, discernibility_per_record, nonuniform_entropy_loss, TreeMeasure,
};
use kanon::prelude::*;

fn main() {
    // CMC comes with a class label (contraceptive method), which the CM
    // measure needs.
    let labeled = kanon::data::cmc::generate(400, 13);
    let table = &labeled.table;
    let k = 5;

    println!(
        "CMC-like table: {} records; anonymizing with k = {k} under each measure\n",
        table.num_rows()
    );

    // Optimize under EM, LM and the tree measure, evaluate under all.
    let em_costs = NodeCostTable::compute(table, &EntropyMeasure);
    let lm_costs = NodeCostTable::compute(table, &LmMeasure);
    let tm_costs = NodeCostTable::compute(table, &TreeMeasure);

    println!(
        "{:<22} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "optimized under", "EM", "LM", "TM", "NE", "DM/n", "CM"
    );
    for (name, costs) in [
        ("entropy (Eq. 3)", &em_costs),
        ("LM (Eq. 4)", &lm_costs),
        ("tree measure", &tm_costs),
    ] {
        let out = kk_anonymize(table, costs, &KkConfig::new(k)).unwrap();
        let em = em_costs.table_loss(&out.table);
        let lm = lm_costs.table_loss(&out.table);
        let tm = tm_costs.table_loss(&out.table);
        let ne = nonuniform_entropy_loss(table, &out.table).unwrap();
        let dm = discernibility_per_record(&out.table);
        let cm = classification_metric(&out.table, &labeled.labels).unwrap();
        println!("{name:<22} {em:>8.4} {lm:>8.4} {tm:>8.4} {ne:>8.4} {dm:>8.1} {cm:>8.4}");
    }

    println!(
        "\nreading the grid: each row minimizes its own diagonal-ish column;\n\
         the entropy measure is distribution-aware (cheap to merge values that\n\
         rarely co-occur), LM and the tree measure are purely structural."
    );

    // Export the LM-optimized table as CSV — the hand-off artifact a data
    // custodian would actually publish.
    let out = kk_anonymize(table, &lm_costs, &KkConfig::new(k)).unwrap();
    let csv = kanon::data::generalized_to_csv(&out.table);
    let preview: Vec<&str> = csv.lines().take(6).collect();
    println!("\npublished CSV (first rows):\n{}", preview.join("\n"));
}
